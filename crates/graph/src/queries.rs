//! The query patterns used in the paper's evaluation.
//!
//! The paper's Figure 7 (q1–q8) and Figure 14 (clique-heavy queries) are
//! drawings without a machine-readable definition, so this module provides a
//! faithful reconstruction guided by every textual constraint in the paper:
//!
//! * q1, q3, q6, q7, q8 contain **no clique with more than two vertices**
//!   (Section 7.1, Exp-1 discussion), i.e. they are triangle-free.
//! * q2, q4 and q5 contain a triangle, which Crystal can serve directly from
//!   its clique index (Exp-2/Exp-3 discussion).
//! * q5 extends q4 with an **end vertex** (degree-1 vertex `u5`), which makes
//!   the join-based systems blow up (Exp-3 discussion).
//! * queries get larger from q1 to q8 ("when the query vertices reach 6" —
//!   Exp-3), so q1–q2 have 4 vertices, q3–q5 have 5–6, q6–q8 have 6.
//! * the Figure 14 queries "all have cliques"; we use the standard
//!   clique-bearing patterns from the Crystal paper's evaluation
//!   (4-clique, tailed 4-clique, double-triangle house, near-5-clique).
//!
//! The exact topology of each reconstructed query is documented on the
//! constant that defines it, so experiments are reproducible even if the
//! reconstruction differs from the original drawings in minor ways.

use crate::pattern::{Pattern, PatternBuilder};

/// A named query pattern, as used throughout the experiment harness.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Short name, e.g. `"q3"` or `"c1"`.
    pub name: &'static str,
    /// Human-readable description of the topology.
    pub description: &'static str,
    /// The pattern itself.
    pub pattern: Pattern,
}

/// q1 — the 4-cycle (square). Triangle-free, 4 vertices, 4 edges.
pub fn q1() -> Pattern {
    PatternBuilder::new(4).cycle(&[0, 1, 2, 3]).build()
}

/// q2 — the tailed triangle: triangle {0,1,2} plus pendant vertex 3 attached
/// to 0. Contains a triangle, 4 vertices, 4 edges.
pub fn q2() -> Pattern {
    PatternBuilder::new(4).clique(&[0, 1, 2]).edge(0, 3).build()
}

/// q3 — the 5-cycle. Triangle-free, 5 vertices, 5 edges.
pub fn q3() -> Pattern {
    PatternBuilder::new(5).cycle(&[0, 1, 2, 3, 4]).build()
}

/// q4 — the "house": 4-cycle {0,1,2,3} with a roof vertex 4 adjacent to 0 and
/// 1 (so {0,1,4} is a triangle). 5 vertices, 6 edges.
pub fn q4() -> Pattern {
    PatternBuilder::new(5)
        .cycle(&[0, 1, 2, 3])
        .edge(0, 4)
        .edge(1, 4)
        .build()
}

/// q5 — q4 plus an end vertex: the house with a degree-1 vertex 5 hanging off
/// the roof vertex 4. 6 vertices, 7 edges.
pub fn q5() -> Pattern {
    PatternBuilder::new(6)
        .cycle(&[0, 1, 2, 3])
        .edge(0, 4)
        .edge(1, 4)
        .edge(4, 5)
        .build()
}

/// q6 — the plain 6-cycle. Triangle-free, 6 vertices, 6 edges. (A 6-cycle
/// with a long chord would be isomorphic to q7, so q6 stays chordless.)
pub fn q6() -> Pattern {
    PatternBuilder::new(6).cycle(&[0, 1, 2, 3, 4, 5]).build()
}

/// q7 — two squares sharing an edge ("ladder" / domino): cycle 0-1-2-3 and
/// cycle 2-3-4-5 sharing edge (2,3). Triangle-free, 6 vertices, 7 edges.
pub fn q7() -> Pattern {
    PatternBuilder::new(6)
        .cycle(&[0, 1, 2, 3])
        .edge(2, 4)
        .edge(4, 5)
        .edge(5, 3)
        .build()
}

/// q8 — the complete bipartite graph K(3,3): parts {0,1,2} and {3,4,5}.
/// Triangle-free but dense (9 edges), the hardest triangle-free query.
pub fn q8() -> Pattern {
    let mut b = PatternBuilder::new(6);
    for u in 0..3 {
        for v in 3..6 {
            b = b.edge(u, v);
        }
    }
    b.build()
}

/// c1 — the 4-clique. 4 vertices, 6 edges.
pub fn c1() -> Pattern {
    PatternBuilder::new(4).clique(&[0, 1, 2, 3]).build()
}

/// c2 — the tailed 4-clique: 4-clique {0,1,2,3} plus a pendant vertex 4
/// attached to 0. 5 vertices, 7 edges.
pub fn c2() -> Pattern {
    PatternBuilder::new(5).clique(&[0, 1, 2, 3]).edge(0, 4).build()
}

/// c3 — two triangles sharing an edge (the "diamond") plus a square hanging
/// off one tip: diamond {0,1,2,3} (edges 0-1,0-2,1-2,1-3,2-3) with path
/// 3-4-5-0. 6 vertices, 8 edges; contains two triangles.
pub fn c3() -> Pattern {
    PatternBuilder::new(6)
        .clique(&[0, 1, 2])
        .edge(1, 3)
        .edge(2, 3)
        .edge(3, 4)
        .edge(4, 5)
        .edge(5, 0)
        .build()
}

/// c4 — the 5-clique minus one edge ("near-5-clique"): K5 on {0..4} without
/// the edge (3,4). 5 vertices, 9 edges; contains several 4-cliques... of size
/// 4 ({0,1,2,3} and {0,1,2,4}).
pub fn c4() -> Pattern {
    let mut b = PatternBuilder::new(5);
    for i in 0..5usize {
        for j in i + 1..5 {
            if !(i == 3 && j == 4) {
                b = b.edge(i, j);
            }
        }
    }
    b.build()
}

/// The running example pattern of Figure 2(a): pivot u0 with leaves
/// u1, u2, u7, u8, u9; u1 has leaves u3, u4; u2 has leaves u5, u6; sibling
/// and cross-unit edges (u1,u2), (u3,u4), (u4,u5), (u5,u6), (u8,u9).
pub fn running_example_pattern() -> Pattern {
    PatternBuilder::new(10)
        .edge(0, 1)
        .edge(0, 2)
        .edge(0, 7)
        .edge(0, 8)
        .edge(0, 9)
        .edge(1, 2)
        .edge(1, 3)
        .edge(1, 4)
        .edge(2, 5)
        .edge(2, 6)
        .edge(3, 4)
        .edge(4, 5)
        .edge(5, 6)
        .edge(8, 9)
        .build()
}

/// The Figure 4 pattern used to illustrate the span heuristic: a path-like
/// pattern where one MLST root has span 2 and the other span 3.
pub fn span_example_pattern() -> Pattern {
    // 0-1-2-3-4 path, plus 3-5 and 3-6 (so vertex 3 is a hub with span 2
    // while vertex 4 at the end has span 3).
    PatternBuilder::new(7)
        .path(&[0, 1, 2, 3, 4])
        .edge(3, 5)
        .edge(3, 6)
        .edge(1, 5)
        .build()
}

/// The q1–q8 query set of Figure 7.
pub fn standard_query_set() -> Vec<NamedQuery> {
    vec![
        NamedQuery { name: "q1", description: "4-cycle", pattern: q1() },
        NamedQuery { name: "q2", description: "tailed triangle", pattern: q2() },
        NamedQuery { name: "q3", description: "5-cycle", pattern: q3() },
        NamedQuery { name: "q4", description: "house (square + roof triangle)", pattern: q4() },
        NamedQuery { name: "q5", description: "house with end vertex", pattern: q5() },
        NamedQuery { name: "q6", description: "6-cycle", pattern: q6() },
        NamedQuery { name: "q7", description: "two squares sharing an edge", pattern: q7() },
        NamedQuery { name: "q8", description: "complete bipartite K(3,3)", pattern: q8() },
    ]
}

/// The clique-heavy query set of Figure 14 (Appendix C.4).
pub fn clique_query_set() -> Vec<NamedQuery> {
    vec![
        NamedQuery { name: "c1", description: "4-clique", pattern: c1() },
        NamedQuery { name: "c2", description: "tailed 4-clique", pattern: c2() },
        NamedQuery { name: "c3", description: "diamond with attached square", pattern: c3() },
        NamedQuery { name: "c4", description: "5-clique minus one edge", pattern: c4() },
    ]
}

/// Look up any named query (`q1`..`q8`, `c1`..`c4`, `triangle`).
pub fn query_by_name(name: &str) -> Option<Pattern> {
    match name {
        "q1" => Some(q1()),
        "q2" => Some(q2()),
        "q3" => Some(q3()),
        "q4" => Some(q4()),
        "q5" => Some(q5()),
        "q6" => Some(q6()),
        "q7" => Some(q7()),
        "q8" => Some(q8()),
        "c1" => Some(c1()),
        "c2" => Some(c2()),
        "c3" => Some(c3()),
        "c4" => Some(c4()),
        "triangle" => Some(PatternBuilder::new(3).clique(&[0, 1, 2]).build()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::contains_triangle_pattern;

    #[test]
    fn triangle_free_queries_are_triangle_free() {
        for q in [q1(), q3(), q6(), q7(), q8()] {
            assert!(!contains_triangle_pattern(&q));
        }
    }

    #[test]
    fn clique_queries_contain_triangles() {
        for q in [q2(), q4(), q5(), c1(), c2(), c3(), c4()] {
            assert!(contains_triangle_pattern(&q));
        }
    }

    #[test]
    fn all_queries_are_connected() {
        for nq in standard_query_set().into_iter().chain(clique_query_set()) {
            assert!(nq.pattern.is_connected(), "{} is not connected", nq.name);
        }
    }

    #[test]
    fn q5_extends_q4_with_an_end_vertex() {
        let q4 = q4();
        let q5 = q5();
        assert_eq!(q5.vertex_count(), q4.vertex_count() + 1);
        assert_eq!(q5.edge_count(), q4.edge_count() + 1);
        assert_eq!(q5.degree(5), 1);
    }

    #[test]
    fn query_sizes_grow() {
        let sizes: Vec<usize> = standard_query_set().iter().map(|q| q.pattern.vertex_count()).collect();
        assert_eq!(sizes, vec![4, 4, 5, 5, 6, 6, 6, 6]);
    }

    #[test]
    fn c1_is_a_clique() {
        let c = c1();
        assert_eq!(c.edge_count(), 6);
        for u in 0..4 {
            assert_eq!(c.degree(u), 3);
        }
    }

    #[test]
    fn query_by_name_roundtrip() {
        for name in ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "c1", "c2", "c3", "c4"] {
            assert!(query_by_name(name).is_some(), "{name} missing");
        }
        assert!(query_by_name("nope").is_none());
    }

    #[test]
    fn running_example_matches_paper_decomposition() {
        let p = running_example_pattern();
        assert_eq!(p.vertex_count(), 10);
        assert_eq!(p.edge_count(), 14);
        // Example 3 decomposition pivots
        assert!(p.has_edge(0, 1) && p.has_edge(0, 2) && p.has_edge(0, 7));
        assert!(p.has_edge(1, 3) && p.has_edge(1, 4));
        assert!(p.has_edge(2, 5) && p.has_edge(2, 6));
        assert!(p.has_edge(0, 8) && p.has_edge(0, 9));
        // the cross-unit edge the paper highlights
        assert!(p.has_edge(4, 5));
    }
}
