//! Structural graph metrics.
//!
//! Used by the dataset suite to check that the synthetic stand-ins reproduce
//! the structural properties of the paper's datasets (degree distribution,
//! clustering, locality), and handy when debugging partitioner behaviour.

use crate::csr::Graph;
use crate::types::VertexId;

/// Degree histogram: `histogram[d]` is the number of vertices of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// The share of vertices whose degree is at least `threshold` — a cheap
/// heavy-tail indicator (power-law graphs keep a noticeable mass far above
/// the mean, lattices do not).
pub fn heavy_tail_fraction(g: &Graph, threshold: usize) -> f64 {
    if g.vertex_count() == 0 {
        return 0.0;
    }
    let heavy = g.vertices().filter(|&v| g.degree(v) >= threshold).count();
    heavy as f64 / g.vertex_count() as f64
}

/// Local clustering coefficient of a vertex: the fraction of its neighbour
/// pairs that are themselves connected. Zero for degree < 2.
pub fn local_clustering(g: &Graph, v: VertexId) -> f64 {
    let adj = g.neighbors(v);
    let d = adj.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in adj.iter().enumerate() {
        for &b in &adj[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over all vertices.
pub fn average_clustering(g: &Graph) -> f64 {
    if g.vertex_count() == 0 {
        return 0.0;
    }
    g.vertices().map(|v| local_clustering(g, v)).sum::<f64>() / g.vertex_count() as f64
}

/// Global clustering coefficient (transitivity): `3 * triangles / wedges`.
pub fn transitivity(g: &Graph) -> f64 {
    let wedges: usize = g
        .vertices()
        .map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * crate::algorithms::triangle_count(g) as f64 / wedges as f64
}

/// Pearson degree assortativity over the edges (positive: hubs connect to
/// hubs, as in collaboration networks; negative: hubs connect to leaves, as
/// in many technological networks). Returns 0 for degenerate graphs.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let edges: Vec<(f64, f64)> = g
        .edges()
        .map(|(u, v)| (g.degree(u) as f64, g.degree(v) as f64))
        .collect();
    if edges.is_empty() {
        return 0.0;
    }
    // symmetrize: every edge contributes both orientations
    let xs: Vec<f64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let ys: Vec<f64> = edges.iter().flat_map(|&(a, b)| [b, a]).collect();
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mean_x) * (y - mean_y)).sum::<f64>() / n;
    let var_x: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum::<f64>() / n;
    let var_y: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum::<f64>() / n;
    let denom = (var_x * var_y).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        cov / denom
    }
}

/// A compact structural summary, convenient for logging dataset profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average local clustering coefficient.
    pub average_clustering: f64,
    /// Global transitivity.
    pub transitivity: f64,
    /// Degree assortativity.
    pub assortativity: f64,
}

impl GraphMetrics {
    /// Computes the summary for `g`.
    pub fn compute(g: &Graph) -> Self {
        GraphMetrics {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            average_degree: g.average_degree(),
            max_degree: g.max_degree(),
            average_clustering: average_clustering(g),
            transitivity: transitivity(g),
            assortativity: degree_assortativity(g),
        }
    }
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg-deg={:.2} max-deg={} clustering={:.3} transitivity={:.3} assortativity={:.3}",
            self.vertices,
            self.edges,
            self.average_degree,
            self.max_degree,
            self.average_clustering,
            self.transitivity,
            self.assortativity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, community_graph, grid_2d};
    use crate::GraphBuilder;

    #[test]
    fn clustering_of_a_triangle_is_one() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-9);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-9);
        assert!((transitivity(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_of_a_star_is_zero() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0);
    }

    #[test]
    fn degree_histogram_sums_to_vertex_count() {
        let g = barabasi_albert(200, 3, 3);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        assert_eq!(hist.len(), g.max_degree() + 1);
    }

    #[test]
    fn power_law_graphs_have_heavier_tails_than_lattices() {
        let ba = barabasi_albert(400, 3, 5);
        let grid = grid_2d(20, 20);
        let threshold = 3 * ba.average_degree() as usize;
        assert!(heavy_tail_fraction(&ba, threshold) > heavy_tail_fraction(&grid, threshold));
    }

    #[test]
    fn community_graphs_cluster_more_than_random_attachment() {
        let communities = community_graph(5, 16, 0.5, 0.01, 2);
        let ba = barabasi_albert(80, 3, 2);
        assert!(average_clustering(&communities) > average_clustering(&ba));
    }

    #[test]
    fn metrics_summary_renders() {
        let g = grid_2d(5, 5);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.vertices, 25);
        assert_eq!(m.edges, g.edge_count());
        let line = format!("{m}");
        assert!(line.contains("|V|=25"));
    }

    #[test]
    fn assortativity_is_bounded() {
        for g in [barabasi_albert(150, 3, 9), grid_2d(12, 12), community_graph(3, 20, 0.4, 0.02, 4)] {
            let a = degree_assortativity(&g);
            assert!((-1.0001..=1.0001).contains(&a), "assortativity {a} out of range");
        }
    }
}
