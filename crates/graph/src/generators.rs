//! Synthetic data-graph generators.
//!
//! The paper evaluates on four real datasets (RoadNet, DBLP, LiveJournal,
//! UK2002). Those graphs are not redistributable here, so `rads-datasets`
//! builds laptop-scale synthetic stand-ins from the primitives in this module:
//!
//! * [`grid_2d`] / [`road_network`] — very sparse, huge-diameter graphs
//!   (RoadNet-like).
//! * [`barabasi_albert`] — power-law, small-diameter graphs (LiveJournal /
//!   UK2002-like).
//! * [`community_graph`] — dense intra-community, sparse inter-community
//!   graphs (DBLP-like collaboration structure, and the locality the
//!   partitioner needs).
//! * [`erdos_renyi`] — uniform random baseline.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;

/// G(n, p) Erdős–Rényi random graph (each pair independently an edge with
/// probability `p`). Quadratic in `n`; intended for small graphs and tests.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Sparse G(n, m) random graph with exactly `m` distinct edges, sampled
/// uniformly. Linear in `m`, suitable for larger graphs.
pub fn gnm_random(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while seen.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = crate::types::EdgeKey::new(u, v);
        if seen.insert(key) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// `rows x cols` 2-D lattice: vertex `(r, c)` is `r * cols + c`, connected to
/// its horizontal and vertical neighbours. Sparse (average degree < 4) with a
/// diameter of `rows + cols - 2`.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Road-network-like graph: a 2-D lattice where a fraction `remove_fraction`
/// of the edges is removed (dead ends, missing links) and a small number of
/// random "highway" shortcuts is added. Keeps the giant component sparse and
/// high-diameter, matching the RoadNet profile of Table 1 (average degree
/// ≈ 1–2, enormous diameter).
pub fn road_network(rows: usize, cols: usize, remove_fraction: f64, shortcuts: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let full = grid_2d(rows, cols);
    let mut edges: Vec<(VertexId, VertexId)> = full.edges().collect();
    edges.shuffle(&mut rng);
    let keep = ((1.0 - remove_fraction) * edges.len() as f64).round() as usize;
    edges.truncate(keep.min(edges.len()));
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    for _ in 0..shortcuts {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique
/// and attaches each new vertex to `m_attach` existing vertices chosen with
/// probability proportional to their degree. Produces the heavy-tailed degree
/// distribution and small diameter of social/web graphs (LiveJournal, UK2002).
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "each new vertex must attach to at least one existing vertex");
    let m0 = (m_attach + 1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // target list: vertex ids repeated once per incident edge endpoint
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            b.add_edge(u as VertexId, v as VertexId);
            targets.push(u as VertexId);
            targets.push(v as VertexId);
        }
    }
    for v in m0..n {
        let mut chosen = std::collections::HashSet::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 50 * m_attach {
            guard += 1;
            let t = if targets.is_empty() || rng.gen_bool(0.05) {
                // small uniform component keeps the graph connected even if
                // the target list is degenerate
                rng.gen_range(0..v) as VertexId
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if (t as usize) < v {
                chosen.insert(t);
            }
        }
        // Sorted, not in HashSet order: the iteration feeds the `targets`
        // list that later draws sample from, so a process-random order would
        // make the generated graph irreproducible across runs.
        let mut chosen: Vec<VertexId> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for &t in &chosen {
            b.add_edge(v as VertexId, t);
            targets.push(v as VertexId);
            targets.push(t);
        }
    }
    b.build()
}

/// Community (planted-partition) graph: `communities` groups of
/// `community_size` vertices; vertex pairs inside a community are connected
/// with probability `p_in`, pairs across communities with probability `p_out`.
/// Mirrors the locality of collaboration networks such as DBLP and gives the
/// partitioner something meaningful to exploit.
pub fn community_graph(
    communities: usize,
    community_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Graph {
    let n = communities * community_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / community_size == v / community_size;
            let p = if same { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// A deterministic ring over `n` vertices with `extra` chords per vertex —
/// the small-world "ring lattice" used by several unit tests.
pub fn ring_lattice(n: usize, extra: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for k in 1..=(1 + extra) {
            let v = (u + k) % n;
            if u != v {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{estimate_diameter, is_connected};

    #[test]
    fn erdos_renyi_is_reproducible() {
        let a = erdos_renyi(50, 0.1, 7);
        let b = erdos_renyi(50, 0.1, 7);
        let c = erdos_renyi(50, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_has_requested_edges() {
        let g = gnm_random(100, 250, 3);
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 250);
    }

    #[test]
    fn gnm_caps_at_max_edges() {
        let g = gnm_random(5, 100, 3);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn grid_counts() {
        let g = grid_2d(4, 5);
        assert_eq!(g.vertex_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5); // horizontal + vertical
        assert!(is_connected(&g));
        assert_eq!(estimate_diameter(&g, 4), 7);
    }

    #[test]
    fn road_network_is_sparse_and_high_diameter() {
        let g = road_network(30, 30, 0.1, 5, 42);
        assert_eq!(g.vertex_count(), 900);
        assert!(g.average_degree() < 4.0);
        assert!(estimate_diameter(&g, 4) > 20);
    }

    #[test]
    fn barabasi_albert_is_skewed_and_connected() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.vertex_count(), 500);
        assert!(g.average_degree() >= 4.0);
        assert!(is_connected(&g));
        // heavy tail: max degree far above the average
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn community_graph_has_local_structure() {
        let g = community_graph(5, 20, 0.4, 0.01, 9);
        assert_eq!(g.vertex_count(), 100);
        // count intra vs inter edges
        let mut intra = 0;
        let mut inter = 0;
        for (u, v) in g.edges() {
            if u / 20 == v / 20 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra = {intra}, inter = {inter}");
    }

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(10, 1);
        assert_eq!(g.vertex_count(), 10);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
    }
}
