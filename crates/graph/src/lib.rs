//! Graph substrate for the RADS reproduction.
//!
//! This crate provides everything the distributed subgraph-enumeration systems
//! need from a graph library:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   unlabeled, undirected data graph with sorted adjacency lists.
//! * [`GraphBuilder`] — incremental construction from edge lists or adjacency
//!   lists, with deduplication and self-loop removal.
//! * [`Pattern`] — small query graphs ("patterns") with the auxiliary
//!   information needed by enumeration engines (degrees, spans, distances,
//!   automorphism-based symmetry-breaking order).
//! * [`generators`] — synthetic data-graph generators (Erdős–Rényi,
//!   Barabási–Albert power-law, 2-D lattices / road-like graphs, clustered
//!   community graphs).
//! * [`queries`] — the query sets used in the paper's evaluation (q1–q8 of
//!   Figure 7 and the clique-heavy queries of Figure 14).
//! * [`algorithms`] — BFS, multi-source BFS, shortest distances, connected
//!   components, triangle/clique enumeration, spanning trees and diameter
//!   estimation.
//! * [`intersect`] — multi-way sorted-set intersection kernels (linear merge,
//!   galloping, adaptive k-way) used by the enumeration engines for
//!   intersection-based candidate generation.
//! * [`io`] — the plain-text adjacency-list format used by the paper for
//!   on-disk graphs.
//!
//! All higher-level crates (`rads-partition`, `rads-single`, `rads-plan`,
//! `rads-core`, `rads-baselines`) are built on top of these types.

pub mod algorithms;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod intersect;
pub mod io;
pub mod metrics;
pub mod pattern;
pub mod queries;
pub mod symmetry;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use intersect::IntersectStats;
pub use pattern::{Pattern, PatternBuilder};
pub use queries::{clique_query_set, standard_query_set, NamedQuery};
pub use symmetry::SymmetryBreaking;
pub use types::{PatternVertex, VertexId};
