//! Plain-text adjacency-list serialization.
//!
//! The paper stores data graphs on disk "in plain text format where each line
//! represents an adjacency-list of a vertex" (Section 7). This module reads
//! and writes that format:
//!
//! ```text
//! <vertex id> <neighbor> <neighbor> ...
//! ```
//!
//! Lines starting with `#` are comments. Vertex ids must be dense after
//! loading; `read_adjacency` relabels sparse ids densely and returns the
//! mapping.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::types::VertexId;

/// Errors produced by the adjacency-list reader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A token could not be parsed as a vertex id.
    Parse { line: usize, token: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, token } => {
                write!(f, "line {line}: cannot parse vertex id from {token:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a graph from an adjacency-list reader. Unknown/sparse vertex ids are
/// relabelled densely in first-appearance order; the returned vector maps the
/// dense id back to the original id.
pub fn read_adjacency<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let mut original_of_dense: Vec<u64> = Vec::new();
    let mut dense_of_original = std::collections::HashMap::new();
    let intern = |orig: u64, table: &mut Vec<u64>, map: &mut std::collections::HashMap<u64, VertexId>| {
        *map.entry(orig).or_insert_with(|| {
            table.push(orig);
            (table.len() - 1) as VertexId
        })
    };
    let mut builder = GraphBuilder::new(0);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(first) = tokens.next() else { continue };
        let u_orig: u64 = first.parse().map_err(|_| IoError::Parse {
            line: lineno + 1,
            token: first.to_string(),
        })?;
        let u = intern(u_orig, &mut original_of_dense, &mut dense_of_original);
        builder.ensure_vertices(u as usize + 1);
        for tok in tokens {
            let v_orig: u64 = tok.parse().map_err(|_| IoError::Parse {
                line: lineno + 1,
                token: tok.to_string(),
            })?;
            let v = intern(v_orig, &mut original_of_dense, &mut dense_of_original);
            builder.add_edge(u, v);
        }
    }
    Ok((builder.build(), original_of_dense))
}

/// Reads a graph from a file in the adjacency-list format.
pub fn read_adjacency_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), IoError> {
    let file = std::fs::File::open(path)?;
    read_adjacency(std::io::BufReader::new(file))
}

/// Writes a graph in the adjacency-list format.
pub fn write_adjacency<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} vertices, {} edges", g.vertex_count(), g.edge_count())?;
    for v in g.vertices() {
        write!(w, "{v}")?;
        for &u in g.neighbors(v) {
            write!(w, " {u}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes a graph to a file in the adjacency-list format.
pub fn write_adjacency_file<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_adjacency(g, file)
}

/// Parses an edge-list string (`u v` per line, `#` comments) — convenient for
/// tests and tiny fixtures.
pub fn read_edge_list(text: &str) -> Result<Graph, IoError> {
    let mut builder = GraphBuilder::new(0);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            continue;
        };
        let u: VertexId = a.parse().map_err(|_| IoError::Parse { line: lineno + 1, token: a.to_string() })?;
        let v: VertexId = b.parse().map_err(|_| IoError::Parse { line: lineno + 1, token: b.to_string() })?;
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip_through_text() {
        let g = erdos_renyi(40, 0.15, 5);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let (g2, map) = read_adjacency(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        // The reader interns ids in appearance order, so build the inverse
        // mapping and check every original edge survives the round trip.
        let mut dense_of_orig = std::collections::HashMap::new();
        for (dense, &orig) in map.iter().enumerate() {
            dense_of_orig.insert(orig, dense as VertexId);
        }
        for (u, v) in g.edges() {
            let du = dense_of_orig[&(u as u64)];
            let dv = dense_of_orig[&(v as u64)];
            assert!(g2.has_edge(du, dv));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\n0 1 2\n1 0\n2 0\n";
        let (g, _) = read_adjacency(std::io::Cursor::new(text.as_bytes().to_vec())).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn sparse_ids_are_relabelled() {
        let text = "100 200\n200 100 300\n";
        let (g, map) = read_adjacency(std::io::Cursor::new(text.as_bytes().to_vec())).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(map, vec![100, 200, 300]);
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let text = "0 1\nnot_a_number 2\n";
        let err = read_adjacency(std::io::Cursor::new(text.as_bytes().to_vec())).unwrap_err();
        match err {
            IoError::Parse { line, token } => {
                assert_eq!(line, 2);
                assert_eq!(token, "not_a_number");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn edge_list_parsing() {
        let g = read_edge_list("# tiny\n0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn file_roundtrip() {
        let g = erdos_renyi(20, 0.2, 1);
        let dir = std::env::temp_dir().join("rads_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.adj");
        write_adjacency_file(&g, &path).unwrap();
        let (g2, _) = read_adjacency_file(&path).unwrap();
        assert_eq!(g.edge_count(), g2.edge_count());
        std::fs::remove_file(&path).ok();
    }
}
