//! Fundamental identifier types shared across the workspace.

/// Identifier of a vertex in the *data graph*.
///
/// The paper's largest dataset (UK2002) has 18.5M vertices, and our simulated
/// datasets stay well below that, so `u32` is sufficient and keeps the CSR
/// arrays, embedding tries and network messages compact.
pub type VertexId = u32;

/// Identifier of a vertex in the *query pattern*.
///
/// Patterns have at most a dozen vertices; `usize` keeps indexing ergonomic.
pub type PatternVertex = usize;

/// An undirected data-graph edge, stored with the smaller endpoint first so it
/// can be used directly as a set/map key (e.g. in the edge-verification index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Smaller endpoint.
    pub lo: VertexId,
    /// Larger endpoint.
    pub hi: VertexId,
}

impl EdgeKey {
    /// Creates a canonical edge key from an unordered vertex pair.
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops are not valid edges in this workspace).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not supported");
        if a < b {
            EdgeKey { lo: a, hi: b }
        } else {
            EdgeKey { lo: b, hi: a }
        }
    }

    /// Returns the two endpoints in `(lo, hi)` order.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.lo, self.hi)
    }

    /// Returns `true` if `v` is one of the endpoints.
    pub fn contains(&self, v: VertexId) -> bool {
        self.lo == v || self.hi == v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    pub fn other(&self, v: VertexId) -> VertexId {
        if v == self.lo {
            self.hi
        } else if v == self.hi {
            self.lo
        } else {
            panic!("vertex {v} is not an endpoint of edge ({}, {})", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_is_canonical() {
        assert_eq!(EdgeKey::new(3, 7), EdgeKey::new(7, 3));
        assert_eq!(EdgeKey::new(3, 7).endpoints(), (3, 7));
    }

    #[test]
    #[should_panic]
    fn edge_key_rejects_self_loop() {
        let _ = EdgeKey::new(5, 5);
    }

    #[test]
    fn edge_key_contains_and_other() {
        let e = EdgeKey::new(10, 2);
        assert!(e.contains(10));
        assert!(e.contains(2));
        assert!(!e.contains(3));
        assert_eq!(e.other(2), 10);
        assert_eq!(e.other(10), 2);
    }

    #[test]
    #[should_panic]
    fn edge_key_other_panics_for_non_endpoint() {
        let e = EdgeKey::new(1, 2);
        let _ = e.other(3);
    }

    #[test]
    fn edge_key_ordering_is_lexicographic() {
        let mut keys = vec![EdgeKey::new(5, 1), EdgeKey::new(0, 9), EdgeKey::new(1, 2)];
        keys.sort();
        assert_eq!(
            keys,
            vec![EdgeKey::new(0, 9), EdgeKey::new(1, 2), EdgeKey::new(1, 5)]
        );
    }
}
