//! Multi-way sorted-set intersection kernels.
//!
//! Intersection-based candidate generation is the core speed lever of modern
//! subgraph enumerators (HUGE, Yang et al., VLDB 2021; Kimmig, Meyerhenke &
//! Strash 2018): instead of scanning one anchor adjacency list and rejecting
//! candidates with a binary-search probe per back edge, the enumerator
//! intersects the adjacency lists of *all* already-matched neighbours, so the
//! candidate pool shrinks multiplicatively before any per-candidate filter
//! runs.
//!
//! # Preconditions
//!
//! Every input slice must be **strictly sorted ascending** (sorted and
//! deduplicated). Adjacency lists obtained from [`crate::Graph`] satisfy this
//! by construction — `Graph::from_csr` checks strict sortedness (in debug
//! builds) and [`crate::GraphBuilder`] sorts and deduplicates — as do the
//! cached foreign adjacency lists of the distributed engine, which are
//! verbatim copies of owner-side CSR slices. The kernels do not re-check the
//! invariant; unsorted input yields an unspecified (but memory-safe) result.
//!
//! # Kernels
//!
//! * [`intersect_pair_into`] — adaptive two-way intersection: a linear merge
//!   for lists of comparable length, a galloping (exponential-probe)
//!   intersection when one list is at least [`GALLOP_RATIO`] times longer
//!   than the other.
//! * [`intersect_k_into`] — adaptive k-way intersection that starts from the
//!   shortest list and folds the remaining lists in ascending length order,
//!   so the running intersection stays as small as possible and the skewed
//!   later steps dispatch to the galloping kernel automatically.
//!
//! Both kernels report what they did through [`IntersectStats`], which the
//! enumeration engines surface (e.g. via
//! `rads_single::EnumerationStats::intersect`) so benchmarks and tests can
//! observe kernel behaviour without re-instrumenting the hot loop.

use crate::types::VertexId;

/// Length ratio beyond which [`intersect_pair_into`] switches from the linear
/// merge to the galloping kernel.
///
/// The crossover is machine-dependent but flat around this value: galloping
/// costs `O(s · log(l / s))` for list lengths `s <= l`, a merge costs
/// `O(s + l)`, so galloping wins clearly once `l / s` exceeds a small
/// constant. 16 matches the conventional choice in the literature.
pub const GALLOP_RATIO: usize = 16;

/// Counters describing the intersection work of a run.
///
/// All fields are totals, so merging the stats of independent work units is a
/// field-wise sum ([`IntersectStats::absorb`]) — order-insensitive, which is
/// what keeps parallel runs' merged statistics identical to sequential runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntersectStats {
    /// Two-way kernel invocations (a k-way call counts its k − 1 folds).
    pub kernel_calls: u64,
    /// Two-way calls dispatched to the linear merge.
    pub merge_dispatches: u64,
    /// Two-way calls dispatched to the galloping kernel.
    pub gallop_dispatches: u64,
    /// Elements inspected across all kernels: merge-loop steps plus galloping
    /// probe/bisection steps. The cost proxy for the candidate generation.
    pub elements_scanned: u64,
}

impl IntersectStats {
    /// Adds `other`'s counters into `self` (field-wise sum).
    pub fn absorb(&mut self, other: &IntersectStats) {
        self.kernel_calls += other.kernel_calls;
        self.merge_dispatches += other.merge_dispatches;
        self.gallop_dispatches += other.gallop_dispatches;
        self.elements_scanned += other.elements_scanned;
    }
}

/// Intersects two strictly sorted slices into `out` (cleared first),
/// dispatching between the linear merge and the galloping kernel based on the
/// length ratio (see [`GALLOP_RATIO`]).
pub fn intersect_pair_into(
    a: &[VertexId],
    b: &[VertexId],
    out: &mut Vec<VertexId>,
    stats: &mut IntersectStats,
) {
    out.clear();
    stats.kernel_calls += 1;
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        // Count it as a (trivial) merge dispatch so call totals add up.
        stats.merge_dispatches += 1;
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        stats.gallop_dispatches += 1;
        gallop_into(small, large, out, stats);
    } else {
        stats.merge_dispatches += 1;
        merge_into(small, large, out, stats);
    }
}

/// Linear merge of two strictly sorted slices.
fn merge_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>, stats: &mut IntersectStats) {
    let (mut i, mut j) = (0, 0);
    let mut steps = 0u64;
    while i < a.len() && j < b.len() {
        steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    stats.elements_scanned += steps;
}

/// First index `i` in `list` with `list[i] >= x`, found by exponential
/// probing from the front followed by a binary search of the final bracket.
/// `steps` accrues the number of probe/bisection steps taken.
fn lower_bound_gallop(list: &[VertexId], x: VertexId, steps: &mut u64) -> usize {
    let mut bound = 1usize;
    while bound <= list.len() && list[bound - 1] < x {
        *steps += 1;
        bound <<= 1;
    }
    let lo = bound >> 1;
    let hi = bound.min(list.len());
    let window = &list[lo..hi];
    *steps += usize::BITS.saturating_sub(window.len().leading_zeros()) as u64;
    lo + window.partition_point(|&y| y < x)
}

/// Galloping intersection: for each element of the (much) shorter list,
/// exponentially probe forward in the remainder of the longer list.
fn gallop_into(
    small: &[VertexId],
    large: &[VertexId],
    out: &mut Vec<VertexId>,
    stats: &mut IntersectStats,
) {
    let mut steps = 0u64;
    let mut rest = large;
    for &x in small {
        let i = lower_bound_gallop(rest, x, &mut steps);
        if i == rest.len() {
            break;
        }
        if rest[i] == x {
            out.push(x);
            rest = &rest[i + 1..];
        } else {
            rest = &rest[i..];
        }
    }
    stats.elements_scanned += steps;
}

/// Adaptive k-way intersection of strictly sorted slices into `out`
/// (cleared first), using `tmp` as scratch so repeated calls are
/// allocation-free once the buffers have grown.
///
/// `lists` is reordered in place: the kernel sorts it by ascending length and
/// folds left-to-right, so the running intersection is never larger than the
/// shortest list and the later, increasingly skewed folds dispatch to the
/// galloping kernel. With zero lists the result is empty; with one list the
/// result is a copy of it.
pub fn intersect_k_into(
    lists: &mut [&[VertexId]],
    out: &mut Vec<VertexId>,
    tmp: &mut Vec<VertexId>,
    stats: &mut IntersectStats,
) {
    out.clear();
    match lists {
        [] => {}
        [only] => out.extend_from_slice(only),
        _ => {
            lists.sort_unstable_by_key(|l| l.len());
            intersect_pair_into(lists[0], lists[1], out, stats);
            for list in &lists[2..] {
                if out.is_empty() {
                    return;
                }
                intersect_pair_into(out, list, tmp, stats);
                std::mem::swap(out, tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: membership testing against the first list.
    fn naive(lists: &[&[VertexId]]) -> Vec<VertexId> {
        let Some(first) = lists.first() else { return Vec::new() };
        first
            .iter()
            .copied()
            .filter(|v| lists[1..].iter().all(|l| l.binary_search(v).is_ok()))
            .collect()
    }

    fn pair(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stats = IntersectStats::default();
        intersect_pair_into(a, b, &mut out, &mut stats);
        assert_eq!(stats.kernel_calls, 1);
        assert_eq!(stats.merge_dispatches + stats.gallop_dispatches, 1);
        out
    }

    fn kway(lists: &[&[VertexId]]) -> Vec<VertexId> {
        let mut lists = lists.to_vec();
        let (mut out, mut tmp) = (Vec::new(), Vec::new());
        let mut stats = IntersectStats::default();
        intersect_k_into(&mut lists, &mut out, &mut tmp, &mut stats);
        out
    }

    #[test]
    fn empty_lists() {
        assert!(pair(&[], &[]).is_empty());
        assert!(pair(&[], &[1, 2, 3]).is_empty());
        assert!(pair(&[1, 2, 3], &[]).is_empty());
        assert!(kway(&[]).is_empty());
        assert!(kway(&[&[], &[1, 2]]).is_empty());
    }

    #[test]
    fn disjoint_ranges() {
        let a: Vec<VertexId> = (0..50).collect();
        let b: Vec<VertexId> = (100..150).collect();
        assert!(pair(&a, &b).is_empty());
        assert!(pair(&b, &a).is_empty());
        // interleaved but still disjoint
        let evens: Vec<VertexId> = (0..100).map(|i| 2 * i).collect();
        let odds: Vec<VertexId> = (0..100).map(|i| 2 * i + 1).collect();
        assert!(pair(&evens, &odds).is_empty());
    }

    #[test]
    fn subset_is_returned_whole() {
        let big: Vec<VertexId> = (0..10_000).collect();
        let small: Vec<VertexId> = (0..20).map(|i| i * 311).collect();
        assert_eq!(pair(&small, &big), small);
        assert_eq!(pair(&big, &small), small);
        assert_eq!(kway(&[&big, &small, &big]), small);
    }

    #[test]
    fn single_list_is_copied() {
        let a: Vec<VertexId> = vec![3, 7, 9];
        assert_eq!(kway(&[&a]), a);
    }

    #[test]
    fn crossover_dispatches_by_length_ratio() {
        let short: Vec<VertexId> = (0..10).map(|i| i * 5).collect();
        let just_under: Vec<VertexId> =
            (0..(short.len() * GALLOP_RATIO - 1) as VertexId).collect();
        let mut out = Vec::new();
        let mut stats = IntersectStats::default();
        intersect_pair_into(&short, &just_under, &mut out, &mut stats);
        assert_eq!(stats.merge_dispatches, 1);
        assert_eq!(stats.gallop_dispatches, 0);
        let long: Vec<VertexId> = (0..(short.len() * GALLOP_RATIO) as VertexId).collect();
        intersect_pair_into(&short, &long, &mut out, &mut stats);
        assert_eq!(stats.gallop_dispatches, 1);
        // same answer on both sides of the crossover
        assert_eq!(pair(&short, &just_under), pair(&short, &long));
    }

    #[test]
    fn matches_naive_on_pseudorandom_lists() {
        // deterministic pseudo-random strictly-sorted lists of varied lengths
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50u32 {
            let k = 2 + (trial % 4) as usize;
            let lists: Vec<Vec<VertexId>> = (0..k)
                .map(|_| {
                    let len = (next() % 200) as usize;
                    let mut l: Vec<VertexId> =
                        (0..len).map(|_| (next() % 500) as VertexId).collect();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let refs: Vec<&[VertexId]> = lists.iter().map(|l| l.as_slice()).collect();
            let expected = {
                // naive intersects against lists[1..]; order by the same
                // shortest-first rule the kernel uses for a fair comparison
                let mut sorted = refs.clone();
                sorted.sort_by_key(|l| l.len());
                naive(&sorted)
            };
            assert_eq!(kway(&refs), expected, "trial {trial}");
            if k >= 2 {
                assert_eq!(pair(refs[0], refs[1]), naive(&[refs[0], refs[1]]));
            }
        }
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = IntersectStats {
            kernel_calls: 1,
            merge_dispatches: 1,
            gallop_dispatches: 0,
            elements_scanned: 10,
        };
        let b = IntersectStats {
            kernel_calls: 2,
            merge_dispatches: 1,
            gallop_dispatches: 1,
            elements_scanned: 5,
        };
        a.absorb(&b);
        assert_eq!(a.kernel_calls, 3);
        assert_eq!(a.merge_dispatches, 2);
        assert_eq!(a.gallop_dispatches, 1);
        assert_eq!(a.elements_scanned, 15);
    }

    #[test]
    fn kway_scratch_buffers_are_reusable() {
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (50..150).collect();
        let c: Vec<VertexId> = (0..200).map(|i| i * 2).collect();
        let mut lists: Vec<&[VertexId]> = vec![&a, &b, &c];
        let (mut out, mut tmp) = (Vec::new(), Vec::new());
        let mut stats = IntersectStats::default();
        intersect_k_into(&mut lists, &mut out, &mut tmp, &mut stats);
        let first = out.clone();
        // second call with dirty buffers must produce the same result
        let mut lists2: Vec<&[VertexId]> = vec![&c, &a, &b];
        intersect_k_into(&mut lists2, &mut out, &mut tmp, &mut stats);
        assert_eq!(out, first);
        assert_eq!(first, naive(&[&b, &a, &c]));
    }
}
