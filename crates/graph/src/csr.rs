//! Compressed sparse row (CSR) representation of the undirected data graph.

use crate::types::VertexId;

/// An unlabeled, undirected data graph stored in CSR form.
///
/// Adjacency lists are sorted, deduplicated and free of self-loops, so
/// `has_edge` is a binary search and neighbourhood intersections can be
/// computed with a linear merge. Vertices are identified by dense ids
/// `0..vertex_count()`.
///
/// This is the storage format the paper assumes on every machine: "we assume
/// each partition is stored as an adjacency-list" (Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` is the slice of `neighbors` owned by `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Intended for use by [`crate::GraphBuilder`] and deserialization code;
    /// the invariants (sorted, deduplicated, symmetric, no self-loops) are
    /// checked in debug builds only.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        let g = Graph { offsets, neighbors };
        #[cfg(debug_assertions)]
        g.check_invariants();
        g
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for v in 0..self.vertex_count() {
            let adj = self.neighbors(v as VertexId);
            for w in adj.windows(2) {
                assert!(w[0] < w[1], "adjacency list of {v} is not strictly sorted");
            }
            for &u in adj {
                assert_ne!(u as usize, v, "self loop at {v}");
                assert!(
                    self.neighbors(u).binary_search(&(v as VertexId)).is_ok(),
                    "edge ({v}, {u}) is not symmetric"
                );
            }
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter list for cache friendliness.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all undirected edges, each reported once as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Average degree (2|E| / |V|); zero for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.vertex_count() as f64
        }
    }

    /// Maximum degree over all vertices; zero for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Size of the intersection of the adjacency lists of `u` and `v`
    /// (number of common neighbours). Linear-merge over the sorted lists.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        intersection_size(self.neighbors(u), self.neighbors(v))
    }

    /// Intersection of the adjacency lists of `u` and `v`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Approximate heap footprint in bytes of the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }

    /// Returns a new graph restricted to the vertices for which `keep` returns
    /// true, relabelled densely in increasing order of the original id, along
    /// with the mapping `new id -> old id`.
    pub fn induced_subgraph<F: Fn(VertexId) -> bool>(&self, keep: F) -> (Graph, Vec<VertexId>) {
        let mut old_of_new = Vec::new();
        let mut new_of_old = vec![u32::MAX; self.vertex_count()];
        for v in self.vertices() {
            if keep(v) {
                new_of_old[v as usize] = old_of_new.len() as VertexId;
                old_of_new.push(v);
            }
        }
        let mut builder = crate::GraphBuilder::new(old_of_new.len());
        for (u, v) in self.edges() {
            let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
            if nu != u32::MAX && nv != u32::MAX {
                builder.add_edge(nu, nv);
            }
        }
        (builder.build(), old_of_new)
    }
}

/// Size of the intersection of two sorted slices.
pub fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn has_edge_and_neighbors() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn edges_are_reported_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn common_neighbors_works() {
        let g = triangle_plus_tail();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbor_count(0, 3), 1); // both adjacent to 2
        assert_eq!(g.common_neighbors(1, 3), vec![2]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(|v| v != 3);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, map2) = g.induced_subgraph(|v| v >= 2);
        assert_eq!(sub2.vertex_count(), 2);
        assert_eq!(sub2.edge_count(), 1);
        assert_eq!(map2, vec![2, 3]);
    }

    #[test]
    fn memory_accounting_is_nonzero() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() > 0);
    }
}
