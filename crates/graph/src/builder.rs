//! Incremental construction of [`Graph`] values.

use crate::csr::Graph;
use crate::types::VertexId;

/// Builds a [`Graph`] from an edge list.
///
/// Duplicated edges and self-loops are silently dropped, and the vertex count
/// grows automatically to accommodate the largest endpoint seen.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder that will produce a graph with at least `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices the built graph will have so far.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures the graph will contain at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds the undirected edge `(u, v)`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            return;
        }
        self.n = self.n.max(u.max(v) as usize + 1);
        self.edges.push((u, v));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Finalizes the builder into a CSR graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        // Count degrees (both directions), dedup later.
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (u, v) in self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// Convenience: builds a graph directly from an edge slice.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let g = GraphBuilder::from_edges(0, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn vertex_count_grows_with_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 7);
        let g = b.build();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.degree(7), 1);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn ensure_vertices_keeps_isolated_vertices() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(0, 1);
        b.ensure_vertices(10);
        let g = b.build();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let mut a = GraphBuilder::new(0);
        a.extend_edges(vec![(0, 1), (1, 2), (2, 3)]);
        let mut b = GraphBuilder::new(0);
        for e in [(0, 1), (1, 2), (2, 3)] {
            b.add_edge(e.0, e.1);
        }
        assert_eq!(a.build(), b.build());
    }
}
