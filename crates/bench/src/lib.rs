//! The experiment harness.
//!
//! Every table and figure of the paper's evaluation (Section 7 and
//! Appendix C) has a function here that regenerates it on the synthetic
//! dataset suite; the `experiments` binary is a thin CLI over these
//! functions and `EXPERIMENTS.md` records the observed results next to the
//! paper's claims. Micro-benchmarks (criterion) live in `benches/`.
//!
//! Measurement-shaped experiments additionally emit [`BenchRecord`]s, which
//! the binary serializes to `BENCH_results.json` so the performance
//! trajectory of the repository is machine-readable; [`parallel_speedup`]
//! measures the intra-machine worker pool (wall-clock speedup of
//! `workers = n` over `workers = 1` on a latency-bearing simulated network)
//! and [`overlap_speedup`] compares the serial round driver against the
//! async one (same network, identical counts asserted per query; the
//! `overlap` rows in `BENCH_results.json` carry its UDS-cluster counterpart
//! from [`procs::overlap_sockets`] too).

pub mod json;
pub mod procs;
pub mod serve;

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rads_baselines::{run_crystal, run_psgl, run_seed, run_twintwig, CliqueIndex};
use rads_core::{run_rads, RadsConfig, RoundDriver};
use rads_datasets::{generate, Dataset, DatasetKind, Scale};
use rads_graph::{queries, Graph, Pattern};
use rads_partition::{LabelPropagationPartitioner, PartitionedGraph, Partitioner};
use rads_plan::{random_min_round_plan, random_star_plan};
use rads_runtime::{Cluster, NetworkConfig};

/// The systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// RADS (this paper).
    Rads,
    /// PSgL.
    Psgl,
    /// TwinTwig.
    TwinTwig,
    /// SEED.
    Seed,
    /// Crystal.
    Crystal,
}

impl System {
    /// All five systems in the order the paper's charts list them.
    pub fn all() -> [System; 5] {
        [System::Seed, System::TwinTwig, System::Crystal, System::Rads, System::Psgl]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Rads => "RADS",
            System::Psgl => "PSgL",
            System::TwinTwig => "TwinTwig",
            System::Seed => "SEED",
            System::Crystal => "Crystal",
        }
    }
}

/// One measurement row: a (system, dataset, query) cell of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// System name.
    pub system: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: String,
    /// Number of machines in the simulated cluster.
    pub machines: usize,
    /// Number of embeddings found (must agree across systems).
    pub embeddings: u64,
    /// Elapsed wall-clock time in milliseconds.
    pub elapsed_ms: f64,
    /// Simulated communication volume in MB.
    pub communication_mb: f64,
    /// Peak intermediate rows held by any machine (memory pressure).
    pub peak_intermediate_rows: usize,
    /// Intra-machine worker threads used (1 for the single-threaded
    /// baselines; RADS honours `RadsConfig::workers`).
    pub workers: usize,
}

impl Measurement {
    /// Renders the row in the tab-separated format the binary prints.
    pub fn render(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}m\t{}\t{:.1}ms\t{:.4}MB\t{}rows",
            self.dataset,
            self.query,
            self.system,
            self.machines,
            self.embeddings,
            self.elapsed_ms,
            self.communication_mb,
            self.peak_intermediate_rows
        )
    }
}

/// Builds a cluster over `graph` with `machines` machines using the
/// label-propagation (METIS stand-in) partitioner, as the paper does.
pub fn build_cluster(graph: &Graph, machines: usize) -> Cluster {
    let partitioning = LabelPropagationPartitioner::default().partition(graph, machines);
    Cluster::new(Arc::new(PartitionedGraph::build(graph, partitioning)))
}

/// [`build_cluster`] with an explicit network model (latency/bandwidth are
/// simulated by sleeping on every remote exchange).
pub fn build_cluster_with_network(
    graph: &Graph,
    machines: usize,
    network: NetworkConfig,
) -> Cluster {
    let partitioning = LabelPropagationPartitioner::default().partition(graph, machines);
    Cluster::with_network(Arc::new(PartitionedGraph::build(graph, partitioning)), network)
}

/// Measures the intra-machine worker pool: RADS wall-clock for each worker
/// count in `worker_counts` on one dataset/query, over a latency-bearing
/// simulated network (on a real cluster the engine overlaps communication
/// stalls with useful work; a zero-cost network would hide exactly the
/// effect this experiment demonstrates). `budget_bytes` is the per-group
/// memory budget `Φ` — the paper's regime has many region groups per
/// machine, which is also what gives the pool units to schedule. Panics if
/// any worker count changes the embedding total — the determinism contract
/// of `RadsConfig::workers`.
#[allow(clippy::too_many_arguments)]
pub fn parallel_speedup(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    network: NetworkConfig,
    budget_bytes: usize,
    query_names: &[&str],
    worker_counts: &[usize],
) -> Vec<BenchRecord> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster_with_network(&dataset.graph, machines, network);
    let mut records = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        let mut expected = None;
        for &workers in worker_counts {
            let config = RadsConfig {
                memory_budget: rads_core::memory::MemoryBudget {
                    region_group_bytes: budget_bytes,
                    ..Default::default()
                },
                ..RadsConfig::with_workers(workers)
            };
            let outcome = run_rads(&cluster, &pattern, &config);
            match expected {
                None => expected = Some(outcome.total_embeddings),
                Some(e) => assert_eq!(
                    e, outcome.total_embeddings,
                    "{qname}: workers={workers} changed the embedding count"
                ),
            }
            let elapsed_ms = outcome.elapsed.as_secs_f64() * 1000.0;
            records.push(BenchRecord {
                experiment: "speedup".to_string(),
                dataset: dataset.profile.name.clone(),
                query: qname.to_string(),
                system: "RADS".to_string(),
                machines,
                workers,
                embeddings: outcome.total_embeddings,
                elapsed_ms,
                embeddings_per_sec: embeddings_per_sec(outcome.total_embeddings, elapsed_ms),
                bytes_shipped: outcome.traffic.total_bytes,
                peak_tracked_bytes: outcome.peak_tracked_bytes(),
                budget_bytes: budget_bytes as u64,
            });
        }
    }
    records
}

/// The `overlap` experiment's simulated leg: wall-clock of the async
/// scatter/harvest round driver against the serial oracle on a
/// latency-bearing network. The serial driver pays the full round trip for
/// every fetchV chunk in sequence; the async driver scatters all chunks of
/// a round before harvesting, so their latency windows overlap — on a
/// network with per-message latency the gap is structural, not a tuning
/// artifact. Each driver runs `reps` times and the fastest run is recorded
/// (minimum, not mean: scheduling noise only ever adds time). Panics if the
/// drivers disagree on any embedding count — the determinism contract of
/// `RadsConfig::round_driver`.
///
/// Returns a `RADS-serial` / `RADS-async` record pair per query.
pub fn overlap_speedup(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    network: NetworkConfig,
    query_names: &[&str],
    reps: u32,
) -> Vec<BenchRecord> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster_with_network(&dataset.graph, machines, network);
    let mut records = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        let mut expected = None;
        for driver in [RoundDriver::Serial, RoundDriver::Async] {
            let config = RadsConfig::with_round_driver(driver);
            let mut best: Option<rads_core::RadsOutcome> = None;
            for _ in 0..reps.max(1) {
                let outcome = run_rads(&cluster, &pattern, &config);
                if best.as_ref().is_none_or(|b| outcome.elapsed < b.elapsed) {
                    best = Some(outcome);
                }
            }
            let outcome = best.expect("reps >= 1");
            match expected {
                None => expected = Some(outcome.total_embeddings),
                Some(e) => assert_eq!(
                    e, outcome.total_embeddings,
                    "{qname}: the async driver changed the embedding count"
                ),
            }
            let elapsed_ms = outcome.elapsed.as_secs_f64() * 1000.0;
            records.push(BenchRecord {
                experiment: "overlap".to_string(),
                dataset: dataset.profile.name.clone(),
                query: qname.to_string(),
                system: match driver {
                    RoundDriver::Serial => "RADS-serial".to_string(),
                    RoundDriver::Async => "RADS-async".to_string(),
                },
                machines,
                workers: config.workers,
                embeddings: outcome.total_embeddings,
                elapsed_ms,
                embeddings_per_sec: embeddings_per_sec(outcome.total_embeddings, elapsed_ms),
                bytes_shipped: outcome.traffic.total_bytes,
                peak_tracked_bytes: outcome.peak_tracked_bytes(),
                budget_bytes: 0,
            });
        }
    }
    records
}

/// The `intersect` experiment: wall-clock of the intersection-based
/// candidate-generation kernel against the pre-intersection probe kernel
/// ([`rads_single::CandidateKernel`]) on single-thread enumeration over one
/// dataset, plus a correctness gate for the distributed engine.
///
/// For every query the single-machine enumeration runs `repetitions` times
/// per kernel (summed, to keep short runs out of timer noise; `elapsed_ms`
/// in the records is the per-run mean). Panics if the two kernels disagree
/// on the embedding count, or if `run_rads` over a `machines`-machine
/// cluster with any worker count in `worker_counts` deviates from that
/// ground truth — the acceptance gate that the kernel swap changed no
/// result.
///
/// Returns two [`BenchRecord`]s per query, systems `"probe-kernel"` and
/// `"intersect-kernel"` (`machines = workers = 1`: both rows time the pure
/// single-thread enumeration path).
pub fn intersect_speedup(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query_names: &[&str],
    worker_counts: &[usize],
    repetitions: u32,
) -> Vec<BenchRecord> {
    use rads_single::{CandidateKernel, EnumerationConfig, Enumerator};

    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let mut records = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        let time_kernel = |kernel: CandidateKernel| {
            let config = EnumerationConfig { kernel, ..Default::default() };
            let start = Instant::now();
            let mut count = 0;
            for _ in 0..repetitions.max(1) {
                count =
                    Enumerator::with_config(&dataset.graph, &pattern, config.clone())
                        .run(|_| true)
                        .embeddings;
            }
            (count, start.elapsed().as_secs_f64() * 1000.0 / repetitions.max(1) as f64)
        };
        let (probe_count, probe_ms) = time_kernel(CandidateKernel::Probe);
        let (fast_count, fast_ms) = time_kernel(CandidateKernel::Intersect);
        assert_eq!(
            probe_count, fast_count,
            "{qname}: the intersection kernel changed the embedding count"
        );
        // distributed correctness gate: every worker count must reproduce the
        // single-machine ground truth
        for &workers in worker_counts {
            let outcome = run_rads(&cluster, &pattern, &RadsConfig::with_workers(workers));
            assert_eq!(
                outcome.total_embeddings, fast_count,
                "{qname}: workers={workers} deviates from single-machine ground truth"
            );
        }
        for (system, count, ms) in
            [("probe-kernel", probe_count, probe_ms), ("intersect-kernel", fast_count, fast_ms)]
        {
            records.push(BenchRecord {
                experiment: "intersect".to_string(),
                dataset: dataset.profile.name.clone(),
                query: qname.to_string(),
                system: system.to_string(),
                machines: 1,
                workers: 1,
                embeddings: count,
                elapsed_ms: ms,
                embeddings_per_sec: embeddings_per_sec(count, ms),
                bytes_shipped: 0,
                peak_tracked_bytes: 0,
                budget_bytes: 0,
            });
        }
    }
    records
}

/// Runs one system on one (dataset, query) pair.
pub fn run_system(
    system: System,
    cluster: &Cluster,
    graph: &Graph,
    dataset: &str,
    query_name: &str,
    pattern: &Pattern,
    crystal_index: Option<&CliqueIndex>,
) -> Measurement {
    let machines = cluster.machines();
    let mut workers = 1;
    let start = Instant::now();
    let (embeddings, communication_mb, peak_rows) = match system {
        System::Rads => {
            let config = RadsConfig::default();
            workers = config.workers;
            let outcome = run_rads(cluster, pattern, &config);
            (outcome.total_embeddings, outcome.traffic.megabytes(), outcome.peak_trie_nodes())
        }
        System::Psgl => {
            let o = run_psgl(cluster, pattern);
            (o.total_embeddings, o.traffic.megabytes(), o.peak_intermediate_rows())
        }
        System::TwinTwig => {
            let o = run_twintwig(cluster, pattern);
            (o.total_embeddings, o.traffic.megabytes(), o.peak_intermediate_rows())
        }
        System::Seed => {
            let o = run_seed(cluster, graph, pattern);
            (o.total_embeddings, o.traffic.megabytes(), o.peak_intermediate_rows())
        }
        System::Crystal => {
            let owned;
            let index = match crystal_index {
                Some(idx) => idx,
                None => {
                    owned = CliqueIndex::build(graph, 4);
                    &owned
                }
            };
            let o = run_crystal(cluster, graph, pattern, index);
            (o.total_embeddings, o.traffic.megabytes(), o.peak_intermediate_rows())
        }
    };
    Measurement {
        system: system.name(),
        dataset: dataset.to_string(),
        query: query_name.to_string(),
        machines,
        embeddings,
        elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
        communication_mb,
        peak_intermediate_rows: peak_rows,
        workers,
    }
}

/// Embeddings per second for a run that found `embeddings` in `elapsed_ms`
/// (zero when no time was observed, so records never contain NaN/inf).
pub fn embeddings_per_sec(embeddings: u64, elapsed_ms: f64) -> f64 {
    if elapsed_ms > 0.0 {
        embeddings as f64 / (elapsed_ms / 1000.0)
    } else {
        0.0
    }
}

/// One machine-readable result row of `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment that produced the row (e.g. `"fig10"`, `"speedup"`).
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Query name.
    pub query: String,
    /// System name.
    pub system: String,
    /// Machines in the simulated cluster.
    pub machines: usize,
    /// Intra-machine worker threads.
    pub workers: usize,
    /// Embeddings found.
    pub embeddings: u64,
    /// Elapsed wall-clock milliseconds.
    pub elapsed_ms: f64,
    /// Embedding throughput (`embeddings / elapsed seconds`) — the
    /// size-independent number future PRs compare to track regressions.
    pub embeddings_per_sec: f64,
    /// Bytes put on the simulated wire.
    pub bytes_shipped: u64,
    /// Peak bytes of intermediate results (trie + expansion buffers) any
    /// worker held — the number the memory governor keeps at or below `Φ`.
    /// `0` for experiments that do not measure memory.
    pub peak_tracked_bytes: u64,
    /// The per-group budget `Φ` the run was given (`0` = not measured).
    pub budget_bytes: u64,
}

impl BenchRecord {
    /// Builds a record from a [`Measurement`] produced by `experiment`.
    pub fn from_measurement(experiment: &str, m: &Measurement) -> Self {
        BenchRecord {
            experiment: experiment.to_string(),
            dataset: m.dataset.clone(),
            query: m.query.clone(),
            system: m.system.to_string(),
            machines: m.machines,
            workers: m.workers,
            embeddings: m.embeddings,
            elapsed_ms: m.elapsed_ms,
            embeddings_per_sec: embeddings_per_sec(m.embeddings, m.elapsed_ms),
            bytes_shipped: (m.communication_mb * 1024.0 * 1024.0).round() as u64,
            peak_tracked_bytes: 0,
            budget_bytes: 0,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":{},\"dataset\":{},\"query\":{},\"system\":{},",
                "\"machines\":{},\"workers\":{},\"embeddings\":{},",
                "\"elapsed_ms\":{:.3},\"embeddings_per_sec\":{:.1},\"bytes_shipped\":{},",
                "\"peak_tracked_bytes\":{},\"budget_bytes\":{}}}"
            ),
            json_string(&self.experiment),
            json_string(&self.dataset),
            json_string(&self.query),
            json_string(&self.system),
            self.machines,
            self.workers,
            self.embeddings,
            self.elapsed_ms,
            self.embeddings_per_sec,
            self.bytes_shipped,
            self.peak_tracked_bytes,
            self.budget_bytes,
        )
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `records` as a pretty-printed JSON array (one record per line).
pub fn render_results_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Writes `records` to `path` as JSON (the `BENCH_results.json` format).
pub fn write_results_json(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, render_results_json(records))
}

/// String-typed fields every `BENCH_results.json` row must carry.
pub const RESULT_STRING_FIELDS: [&str; 4] = ["experiment", "dataset", "query", "system"];
/// Non-negative-integer fields every row must carry.
pub const RESULT_COUNT_FIELDS: [&str; 6] =
    ["machines", "workers", "embeddings", "bytes_shipped", "peak_tracked_bytes", "budget_bytes"];
/// Finite non-negative float fields every row must carry.
pub const RESULT_FLOAT_FIELDS: [&str; 2] = ["elapsed_ms", "embeddings_per_sec"];

/// Validates the `BENCH_results.json` schema: a non-empty array whose every
/// row carries all [`RESULT_STRING_FIELDS`], [`RESULT_COUNT_FIELDS`] and
/// [`RESULT_FLOAT_FIELDS`] with the right types. Returns the row count, or
/// a message naming the first offending row and field — the
/// `experiments validate` CI gate fails on any drift in the committed
/// experiment format.
pub fn validate_results_json(text: &str) -> Result<usize, String> {
    let parsed = json::Json::parse(text)?;
    let rows = parsed.as_array().ok_or("top-level value must be an array")?;
    if rows.is_empty() {
        return Err("the results array is empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in RESULT_STRING_FIELDS {
            let value = row.get(key).ok_or(format!("row {i}: missing field {key:?}"))?;
            if value.as_str().is_none() {
                return Err(format!("row {i}: field {key:?} must be a string"));
            }
        }
        for key in RESULT_COUNT_FIELDS {
            let value = row.get(key).ok_or(format!("row {i}: missing field {key:?}"))?;
            if value.as_u64().is_none() {
                return Err(format!("row {i}: field {key:?} must be a non-negative integer"));
            }
        }
        for key in RESULT_FLOAT_FIELDS {
            let value = row.get(key).ok_or(format!("row {i}: missing field {key:?}"))?;
            match value.as_f64() {
                Some(f) if f.is_finite() && f >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "row {i}: field {key:?} must be a finite non-negative number"
                    ))
                }
            }
        }
    }
    Ok(rows.len())
}

/// Validates a Chrome trace-event JSON artifact written by
/// `rads-node --trace-out` (the [`rads_obs::drain_chrome_trace`] format):
///
/// * the top level is an object with a `traceEvents` array;
/// * every complete (`"ph":"X"`) event carries `name`, `cat`, `ts`, `dur`,
///   `pid`, `tid` and an `args` object with a unique nonzero `id`;
/// * every `parent` id is 0 (a root) or resolves to another span of the
///   same process, and a child never starts before its parent;
/// * the `span_accounting` metadata event reports `started == closed` —
///   every span opened during the run was closed (no leaked guards).
///
/// Returns the number of spans, or a message naming the first violation.
pub fn validate_trace_json(text: &str) -> Result<usize, String> {
    let parsed = json::Json::parse(text)?;
    let events = parsed
        .get("traceEvents")
        .and_then(json::Json::as_array)
        .ok_or("top-level object must carry a traceEvents array")?;
    let event_u64 = |event: &json::Json, key: &str, what: &str| {
        event.get(key).and_then(json::Json::as_u64).ok_or(format!("{what}: missing {key:?}"))
    };
    // first pass: collect span ids and start times per process
    let mut spans: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    let mut accounting = None;
    for (i, event) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        let ph = event.get("ph").and_then(json::Json::as_str).ok_or(format!("{what}: missing ph"))?;
        let name =
            event.get("name").and_then(json::Json::as_str).ok_or(format!("{what}: missing name"))?;
        match ph {
            "M" => {
                if name == "span_accounting" {
                    let args = event.get("args").ok_or(format!("{what}: missing args"))?;
                    accounting = Some((
                        event_u64(args, "started", &what)?,
                        event_u64(args, "closed", &what)?,
                    ));
                }
            }
            "X" => {
                event
                    .get("cat")
                    .and_then(json::Json::as_str)
                    .ok_or(format!("{what}: span {name:?} missing cat"))?;
                let pid = event_u64(event, "pid", &what)?;
                event_u64(event, "tid", &what)?;
                let ts = event_u64(event, "ts", &what)?;
                event_u64(event, "dur", &what)?;
                let args = event.get("args").ok_or(format!("{what}: span {name:?} missing args"))?;
                let id = event_u64(args, "id", &what)?;
                if id == 0 {
                    return Err(format!("{what}: span {name:?} has id 0"));
                }
                if spans.insert((pid, id), ts).is_some() {
                    return Err(format!("{what}: duplicate span id {id} in process {pid}"));
                }
            }
            other => return Err(format!("{what}: unknown event phase {other:?}")),
        }
    }
    // second pass: parents resolve within the process and started first
    for (i, event) in events.iter().enumerate() {
        if event.get("ph").and_then(json::Json::as_str) != Some("X") {
            continue;
        }
        let what = format!("traceEvents[{i}]");
        let pid = event_u64(event, "pid", &what)?;
        let ts = event_u64(event, "ts", &what)?;
        let args = event.get("args").ok_or(format!("{what}: missing args"))?;
        let parent = event_u64(args, "parent", &what)?;
        if parent == 0 {
            continue;
        }
        let Some(&parent_ts) = spans.get(&(pid, parent)) else {
            return Err(format!("{what}: parent {parent} does not resolve in process {pid}"));
        };
        if parent_ts > ts {
            return Err(format!(
                "{what}: starts at {ts}µs before its parent {parent} at {parent_ts}µs"
            ));
        }
    }
    let (started, closed) = accounting.ok_or("no span_accounting metadata event")?;
    if started != closed {
        return Err(format!("span accounting: {started} spans started but {closed} closed"));
    }
    if started != spans.len() as u64 {
        return Err(format!(
            "span accounting reports {started} spans but the file holds {}",
            spans.len()
        ));
    }
    Ok(spans.len())
}

/// Validates a metrics JSON artifact written by `rads-node --metrics-out`
/// (the [`rads_obs::MetricsSnapshot::to_json`] format): a `metrics` object
/// whose every entry is a counter/gauge with a non-negative `value`, or a
/// histogram whose `buckets` close with an `"+Inf"` bucket and whose
/// per-bucket counts sum to `count`. Returns the number of metrics.
pub fn validate_metrics_json(text: &str) -> Result<usize, String> {
    let parsed = json::Json::parse(text)?;
    let metrics = parsed
        .get("metrics")
        .and_then(json::Json::as_object)
        .ok_or("top-level object must carry a metrics object")?;
    for (name, value) in metrics {
        let kind = value
            .get("type")
            .and_then(json::Json::as_str)
            .ok_or(format!("metric {name:?}: missing type"))?;
        match kind {
            "counter" | "gauge" => {
                value
                    .get("value")
                    .and_then(json::Json::as_u64)
                    .ok_or(format!("metric {name:?}: missing integer value"))?;
            }
            "histogram" => {
                let buckets = value
                    .get("buckets")
                    .and_then(json::Json::as_array)
                    .ok_or(format!("metric {name:?}: missing buckets"))?;
                let last = buckets.last().ok_or(format!("metric {name:?}: no buckets"))?;
                if last.get("le").and_then(json::Json::as_str) != Some("+Inf") {
                    return Err(format!("metric {name:?}: buckets must close with le \"+Inf\""));
                }
                let mut total = 0u64;
                for (b, bucket) in buckets.iter().enumerate() {
                    total += bucket
                        .get("count")
                        .and_then(json::Json::as_u64)
                        .ok_or(format!("metric {name:?}: bucket {b} missing count"))?;
                }
                let count = value
                    .get("count")
                    .and_then(json::Json::as_u64)
                    .ok_or(format!("metric {name:?}: missing count"))?;
                value
                    .get("sum")
                    .and_then(json::Json::as_u64)
                    .ok_or(format!("metric {name:?}: missing sum"))?;
                if total != count {
                    return Err(format!(
                        "metric {name:?}: buckets sum to {total} but count says {count}"
                    ));
                }
            }
            other => return Err(format!("metric {name:?}: unknown type {other:?}")),
        }
    }
    Ok(metrics.len())
}

/// The `observe` experiment: the cost of the observability layer. Every
/// query runs on the same in-process cluster twice per rep — once with
/// tracing and metrics force-disabled, once with both force-enabled — and
/// the fastest rep per leg is recorded (minimum, not mean: noise only adds
/// time). Panics if enabling observability changes any embedding count —
/// the *no-perturbation* contract: spans and metric recordings must never
/// influence enumeration order or results. The committed rows pin the
/// overhead budget (≤2% on the enabled leg) that keeps the instrumentation
/// shippable in release builds.
///
/// Trace buffers and the metrics registry are drained and reset between
/// reps so the enabled leg measures steady-state recording, not unbounded
/// accumulation. On return both toggles are left disabled (their
/// programmatic default).
///
/// Returns a `RADS-obs-off` / `RADS-obs-on` record pair per query.
pub fn observe_overhead(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query_names: &[&str],
    reps: u32,
) -> Vec<BenchRecord> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let mut records = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        let config = RadsConfig::default();
        let mut expected = None;
        for (system, enabled) in [("RADS-obs-off", false), ("RADS-obs-on", true)] {
            rads_obs::set_metrics_enabled(enabled);
            rads_obs::set_trace_enabled(enabled);
            let mut best: Option<rads_core::RadsOutcome> = None;
            for _ in 0..reps.max(1) {
                let outcome = run_rads(&cluster, &pattern, &config);
                // drain what this rep recorded: steady-state cost, not
                // unbounded accumulation across reps
                rads_obs::discard_trace();
                rads_obs::Registry::global().reset();
                if best.as_ref().is_none_or(|b| outcome.elapsed < b.elapsed) {
                    best = Some(outcome);
                }
            }
            let outcome = best.expect("reps >= 1");
            match expected {
                None => expected = Some(outcome.total_embeddings),
                Some(e) => assert_eq!(
                    e, outcome.total_embeddings,
                    "{qname}: enabling observability changed the embedding count"
                ),
            }
            let elapsed_ms = outcome.elapsed.as_secs_f64() * 1000.0;
            records.push(BenchRecord {
                experiment: "observe".to_string(),
                dataset: dataset.profile.name.clone(),
                query: qname.to_string(),
                system: system.to_string(),
                machines,
                workers: config.workers,
                embeddings: outcome.total_embeddings,
                elapsed_ms,
                embeddings_per_sec: embeddings_per_sec(outcome.total_embeddings, elapsed_ms),
                bytes_shipped: outcome.traffic.total_bytes,
                peak_tracked_bytes: outcome.peak_tracked_bytes(),
                budget_bytes: 0,
            });
        }
        rads_obs::set_metrics_enabled(false);
        rads_obs::set_trace_enabled(false);
    }
    records
}

/// Table 1: the dataset profiles.
pub fn table1(scale: Scale, seed: u64) -> Vec<rads_datasets::DatasetProfile> {
    rads_datasets::generate_all(scale, seed).into_iter().map(|d| d.profile).collect()
}

/// Table 2: data-graph size vs Crystal clique-index size, per dataset.
pub fn table2(scale: Scale, seed: u64) -> Vec<(String, usize, usize)> {
    rads_datasets::generate_all(scale, seed)
        .into_iter()
        .map(|d| {
            let graph_bytes = d.graph.memory_bytes();
            let index_bytes = CliqueIndex::build(&d.graph, 4).size_bytes();
            (d.profile.name, graph_bytes, index_bytes)
        })
        .collect()
}

/// Figures 8–11: elapsed time and communication for every system and query on
/// one dataset.
pub fn performance_figure(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    systems: &[System],
    query_names: &[&str],
) -> Vec<Measurement> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let index = CliqueIndex::build(&dataset.graph, 4);
    let mut rows = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        for &system in systems {
            rows.push(run_system(
                system,
                &cluster,
                &dataset.graph,
                dataset.profile.name.as_str(),
                qname,
                &pattern,
                Some(&index),
            ));
        }
    }
    rows
}

/// Figure 12: scalability ratio — total time over all queries with 5 machines
/// divided by the total time with `m` machines, for m in `machine_counts`.
pub fn scalability_figure(
    kind: DatasetKind,
    scale: Scale,
    machine_counts: &[usize],
    seed: u64,
    systems: &[System],
    query_names: &[&str],
) -> Vec<(&'static str, usize, f64)> {
    let dataset = generate(kind, scale, seed);
    let index = CliqueIndex::build(&dataset.graph, 4);
    let mut totals: Vec<(System, usize, f64)> = Vec::new();
    for &m in machine_counts {
        let cluster = build_cluster(&dataset.graph, m);
        for &system in systems {
            let mut total_ms = 0.0;
            for &qname in query_names {
                let pattern = queries::query_by_name(qname).expect("known query");
                let row = run_system(
                    system,
                    &cluster,
                    &dataset.graph,
                    dataset.profile.name.as_str(),
                    qname,
                    &pattern,
                    Some(&index),
                );
                total_ms += row.elapsed_ms;
            }
            totals.push((system, m, total_ms));
        }
    }
    let base = machine_counts[0];
    let mut out = Vec::new();
    for &system in systems {
        let base_ms = totals
            .iter()
            .find(|(s, m, _)| *s == system && *m == base)
            .map(|(_, _, t)| *t)
            .unwrap_or(1.0);
        for &m in machine_counts {
            let t = totals
                .iter()
                .find(|(s, mm, _)| *s == system && *mm == m)
                .map(|(_, _, t)| *t)
                .unwrap_or(base_ms);
            out.push((system.name(), m, base_ms / t.max(1e-6)));
        }
    }
    out
}

/// Figure 13: execution-plan effectiveness — RADS's planner vs RanS vs RanM.
pub fn plan_effectiveness_figure(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query_names: &[&str],
    repetitions: u64,
) -> Vec<(String, String, f64)> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let mut rows = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).expect("known query");
        // RADS plan
        let start = Instant::now();
        let expected = run_rads(&cluster, &pattern, &RadsConfig::default()).total_embeddings;
        rows.push((qname.to_string(), "RADS".to_string(), start.elapsed().as_secs_f64() * 1000.0));
        // RanS / RanM: average over `repetitions` random plans
        for (label, make_plan) in [
            ("RanS", true),
            ("RanM", false),
        ] {
            let mut total = 0.0;
            for rep in 0..repetitions {
                let plan = if make_plan {
                    random_star_plan(&pattern, seed + rep)
                } else {
                    random_min_round_plan(&pattern, seed + rep)
                };
                let config = RadsConfig { plan_override: Some(plan), ..Default::default() };
                let start = Instant::now();
                let outcome = run_rads(&cluster, &pattern, &config);
                assert_eq!(outcome.total_embeddings, expected, "{qname}/{label}");
                total += start.elapsed().as_secs_f64() * 1000.0;
            }
            rows.push((qname.to_string(), label.to_string(), total / repetitions as f64));
        }
    }
    rows
}

/// Tables 3–4: intermediate-result size, embedding list vs embedding trie.
pub fn compression_table(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query_names: &[&str],
) -> Vec<(String, u64, u64)> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    query_names
        .iter()
        .map(|&qname| {
            let pattern = queries::query_by_name(qname).expect("known query");
            let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
            (qname.to_string(), outcome.embedding_list_bytes(), outcome.embedding_trie_bytes())
        })
        .collect()
}

/// Figure 15: clique-heavy queries, SEED vs Crystal vs RADS.
pub fn clique_queries_figure(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
) -> Vec<Measurement> {
    performance_figure(
        kind,
        scale,
        machines,
        seed,
        &[System::Seed, System::Crystal, System::Rads],
        &["c1", "c2", "c3", "c4"],
    )
}

/// Ablations called out in DESIGN.md: SM-E on/off, cache on/off, proximity vs
/// random region grouping. Returns (`label`, elapsed ms, communication MB).
pub fn ablations(kind: DatasetKind, scale: Scale, machines: usize, seed: u64, query: &str) -> Vec<(String, f64, f64)> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let pattern = queries::query_by_name(query).expect("known query");
    let variants: Vec<(&str, RadsConfig)> = vec![
        ("full", RadsConfig::default()),
        ("no-sme", RadsConfig { enable_sme: false, ..Default::default() }),
        ("no-cache", RadsConfig { enable_cache: false, ..Default::default() }),
        (
            "random-groups",
            RadsConfig { grouping: rads_core::RegionGroupStrategy::Random, ..Default::default() },
        ),
        ("no-load-sharing", RadsConfig { enable_load_sharing: false, ..Default::default() }),
    ];
    let mut expected = None;
    variants
        .into_iter()
        .map(|(label, config)| {
            let start = Instant::now();
            let outcome = run_rads(&cluster, &pattern, &config);
            let ms = start.elapsed().as_secs_f64() * 1000.0;
            match expected {
                None => expected = Some(outcome.total_embeddings),
                Some(e) => assert_eq!(e, outcome.total_embeddings, "{label} changed the result"),
            }
            (label.to_string(), ms, outcome.traffic.megabytes())
        })
        .collect()
}

/// The robustness test of Exp-4: run every system on a dense workload and
/// report the peak bytes of intermediate state any single machine had to
/// hold, together with whether that fits under `cap_bytes`. RADS bounds its
/// peak through region grouping; the shuffle-based systems do not, which is
/// why they are the ones that exceed the cap first as the graph grows.
pub fn robustness_experiment(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query: &str,
    cap_bytes: usize,
) -> Vec<(&'static str, usize, bool)> {
    let dataset = generate(kind, scale, seed);
    let cluster = build_cluster(&dataset.graph, machines);
    let pattern = queries::query_by_name(query).expect("known query");
    let index = CliqueIndex::build(&dataset.graph, 4);
    let mut rows = Vec::new();

    let rads_budget = RadsConfig {
        memory_budget: rads_core::memory::MemoryBudget::from_bytes(cap_bytes / 4),
        ..Default::default()
    };
    let rads = run_rads(&cluster, &pattern, &rads_budget);
    let rads_peak = rads.peak_trie_nodes() * rads_core::EmbeddingTrie::NODE_BYTES;
    rows.push(("RADS", rads_peak, rads_peak <= cap_bytes));

    let psgl = run_psgl(&cluster, &pattern);
    rows.push(("PSgL", psgl.peak_intermediate_bytes(), psgl.peak_intermediate_bytes() <= cap_bytes));
    let tt = run_twintwig(&cluster, &pattern);
    rows.push(("TwinTwig", tt.peak_intermediate_bytes(), tt.peak_intermediate_bytes() <= cap_bytes));
    let seed_o = run_seed(&cluster, &dataset.graph, &pattern);
    rows.push(("SEED", seed_o.peak_intermediate_bytes(), seed_o.peak_intermediate_bytes() <= cap_bytes));
    let crystal = run_crystal(&cluster, &dataset.graph, &pattern, &index);
    rows.push((
        "Crystal",
        crystal.peak_intermediate_bytes(),
        crystal.peak_intermediate_bytes() <= cap_bytes,
    ));
    rows
}

/// The adversarial hub workload of the governor robustness experiment: a
/// graph plus partitioning built so the *static* space estimate is wildly
/// wrong.
///
/// Two machines each own half of a sparse chorded ring (every ring vertex
/// closes a couple of triangles, so SM-E fits a small nodes-per-candidate
/// estimate from the partition interiors), and many disjoint dense *hub
/// pods* — 12-vertex cliques — straddle the partition cut: every pod vertex
/// is adjacent to pod-mates on the other machine, so all of them have border
/// distance 0, are excluded from the SM-E sample, and land in the
/// distributed phase, where each generates hundreds of times the estimated
/// intermediate results. Region groups sized from the ring-fitted estimate
/// pack many pod vertices together and blow an order of magnitude past `Φ`
/// unless the runtime governor splits them; at the same time no *single*
/// start candidate exceeds a few tens of KiB, so the governor's `Φ/2`
/// single-unit contract holds for budgets well below the aggregate overflow.
pub fn hub_trap_workload(scale: Scale, seed: u64) -> (Graph, rads_partition::Partitioning) {
    use rads_graph::GraphBuilder;
    const POD: usize = 12;
    // Ring size scales; the pod count keeps a floor so the aggregate
    // explosion factor survives smoke-mode scales.
    let ring = (((1600.0 * scale.0).round() as usize).max(160) / 2) * 2;
    let pods = (ring / 16).max(24);
    let n = ring + pods * POD;
    let mut b = GraphBuilder::new(n);
    for i in 0..ring as u32 {
        b.add_edge(i, (i + 1) % ring as u32);
        b.add_edge(i, (i + 2) % ring as u32);
    }
    for p in 0..pods {
        let base = (ring + p * POD) as u32;
        for i in 0..POD as u32 {
            for j in i + 1..POD as u32 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    // Tie every pod into the ring *near the two borders only* (the cut at
    // ring/2 and the wrap-around at 0), so the ring interior keeps its
    // border distance and SM-E still trains the — soon to be defeated —
    // estimate on it; `seed` perturbs the attachment points.
    let cut = ring as u32 / 2;
    for p in 0..pods as u32 {
        let base = ring as u32 + p * POD as u32;
        let offset = (seed as u32).wrapping_add(3 * p) % 8;
        b.add_edge(base, (cut + offset) % ring as u32);
        b.add_edge(base + 1, (offset * 2) % ring as u32);
    }
    let graph = b.build();
    // Machine 0: first half of the ring and the even pod vertices; machine
    // 1: the rest. Alternating ownership inside a pod puts every pod vertex
    // on the border.
    let assignment: Vec<usize> = (0..n)
        .map(|v| {
            if v < ring {
                usize::from(v >= ring / 2)
            } else {
                (v - ring) % 2
            }
        })
        .collect();
    (graph, rads_partition::Partitioning::new(assignment, 2))
}

/// The governor robustness experiment: on [`hub_trap_workload`], the static
/// estimate packs hub candidates into groups that overflow `Φ` by ≥ 10x
/// (demonstrated by the `RADS-static` rows, which disable runtime
/// enforcement), while the governor keeps the peak at or under `Φ`
/// (`RADS-governor` rows) — with embedding counts equal to the
/// single-machine ground truth in every configuration. Panics if any of
/// those properties fails, so committed rows are self-verifying.
pub fn governor_robustness(
    scale: Scale,
    seed: u64,
    budget_bytes: usize,
    worker_counts: &[usize],
) -> Vec<BenchRecord> {
    let (graph, partitioning) = hub_trap_workload(scale, seed);
    let cluster = Cluster::new(Arc::new(PartitionedGraph::build(&graph, partitioning)));
    let pattern = queries::query_by_name("q2").expect("known query");
    let expected = rads_single::count_embeddings(&graph, &pattern);
    let mut records = Vec::new();
    for &workers in worker_counts {
        for (system, enforce) in [("RADS-static", false), ("RADS-governor", true)] {
            let config = RadsConfig {
                memory_budget: rads_core::MemoryBudget::from_bytes(budget_bytes),
                enforce_memory_budget: enforce,
                ..RadsConfig::with_workers(workers)
            };
            let start = Instant::now();
            let outcome = run_rads(&cluster, &pattern, &config);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(
                outcome.total_embeddings, expected,
                "{system} workers={workers}: counts deviate from ground truth"
            );
            let peak = outcome.peak_tracked_bytes();
            if enforce {
                assert!(
                    peak <= budget_bytes as u64,
                    "{system} workers={workers}: peak {peak} B exceeds Φ = {budget_bytes} B — \
                     if Φ was overridden (--budget), it must stay at least twice the workload's \
                     largest single-candidate footprint (the governor's Φ/2 single-unit contract)"
                );
            } else {
                assert!(
                    peak >= 10 * budget_bytes as u64,
                    "the workload must defeat the static estimate by ≥ 10x, got peak {peak} B vs \
                     Φ = {budget_bytes} B — if Φ was overridden (--budget), it must stay at most \
                     1/10th of the workload's unguarded peak (≈ 1 MiB at smoke scales)"
                );
            }
            records.push(BenchRecord {
                experiment: "robustness".to_string(),
                dataset: "HubTrap".to_string(),
                query: "q2".to_string(),
                system: system.to_string(),
                machines: 2,
                workers,
                embeddings: outcome.total_embeddings,
                elapsed_ms,
                embeddings_per_sec: embeddings_per_sec(outcome.total_embeddings, elapsed_ms),
                bytes_shipped: outcome.traffic.total_bytes,
                peak_tracked_bytes: peak,
                budget_bytes: budget_bytes as u64,
            });
        }
    }
    records
}

/// Convenience used by the binary and smoke tests: a small dataset for quick
/// verification.
pub fn smoke_dataset() -> Dataset {
    generate(DatasetKind::Dblp, Scale(0.1), 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_agree_on_a_small_workload() {
        let dataset = smoke_dataset();
        let cluster = build_cluster(&dataset.graph, 3);
        let index = CliqueIndex::build(&dataset.graph, 4);
        for qname in ["triangle", "q1", "q2"] {
            let pattern = queries::query_by_name(qname).unwrap();
            let counts: Vec<u64> = System::all()
                .iter()
                .map(|&s| {
                    run_system(s, &cluster, &dataset.graph, "DBLP", qname, &pattern, Some(&index))
                        .embeddings
                })
                .collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "{qname}: {counts:?}");
        }
    }

    #[test]
    fn table1_has_four_rows() {
        let rows = table1(Scale(0.1), 3);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.vertices > 0 && r.edges > 0));
    }

    #[test]
    fn table2_index_is_larger_than_graph_on_dense_datasets() {
        let rows = table2(Scale(0.1), 3);
        assert_eq!(rows.len(), 4);
        // at least one dense dataset has an index comparable to or larger
        // than the CSR graph, reproducing the paper's index-blow-up point
        assert!(rows.iter().any(|(_, g, i)| i * 2 > *g));
    }

    #[test]
    fn ablations_preserve_counts() {
        let rows = ablations(DatasetKind::Dblp, Scale(0.1), 2, 5, "q2");
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn measurement_rendering() {
        let m = Measurement {
            system: "RADS",
            dataset: "DBLP".into(),
            query: "q1".into(),
            machines: 4,
            embeddings: 10,
            elapsed_ms: 1.5,
            communication_mb: 0.25,
            peak_intermediate_rows: 7,
            workers: 2,
        };
        let line = m.render();
        assert!(line.contains("RADS") && line.contains("q1") && line.contains("4m"));
        let record = BenchRecord::from_measurement("fig9", &m);
        assert_eq!(record.bytes_shipped, 262144);
        assert_eq!(record.workers, 2);
        let json = record.to_json();
        assert!(json.contains("\"experiment\":\"fig9\""));
        assert!(json.contains("\"bytes_shipped\":262144"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn results_json_renders_an_array() {
        let m = Measurement {
            system: "RADS",
            dataset: "DBLP".into(),
            query: "q2".into(),
            machines: 2,
            embeddings: 3,
            elapsed_ms: 0.5,
            communication_mb: 0.0,
            peak_intermediate_rows: 1,
            workers: 1,
        };
        let records = vec![
            BenchRecord::from_measurement("fig9", &m),
            BenchRecord::from_measurement("fig9", &m),
        ];
        let text = render_results_json(&records);
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert_eq!(text.matches("\"query\":\"q2\"").count(), 2);
        assert_eq!(render_results_json(&[]), "[\n]\n");
    }

    #[test]
    fn intersect_experiment_pins_kernel_equivalence() {
        let records =
            intersect_speedup(DatasetKind::Dblp, Scale(0.08), 2, 9, &["q1", "c1"], &[1, 2], 1);
        assert_eq!(records.len(), 4);
        for pair in records.chunks(2) {
            assert_eq!(pair[0].system, "probe-kernel");
            assert_eq!(pair[1].system, "intersect-kernel");
            assert_eq!(pair[0].embeddings, pair[1].embeddings);
            assert_eq!(pair[0].experiment, "intersect");
        }
    }

    #[test]
    fn throughput_is_finite_and_consistent() {
        assert_eq!(embeddings_per_sec(500, 250.0), 2000.0);
        assert_eq!(embeddings_per_sec(500, 0.0), 0.0);
        let m = Measurement {
            system: "RADS",
            dataset: "DBLP".into(),
            query: "q1".into(),
            machines: 1,
            embeddings: 100,
            elapsed_ms: 50.0,
            communication_mb: 0.0,
            peak_intermediate_rows: 0,
            workers: 1,
        };
        let record = BenchRecord::from_measurement("fig9", &m);
        assert_eq!(record.embeddings_per_sec, 2000.0);
        assert!(record.to_json().contains("\"embeddings_per_sec\":2000.0"));
    }

    #[test]
    fn results_schema_validation_accepts_the_writer_and_rejects_drift() {
        let m = Measurement {
            system: "RADS",
            dataset: "DBLP".into(),
            query: "q1".into(),
            machines: 2,
            embeddings: 5,
            elapsed_ms: 1.0,
            communication_mb: 0.0,
            peak_intermediate_rows: 0,
            workers: 1,
        };
        let good = render_results_json(&[BenchRecord::from_measurement("fig9", &m)]);
        assert_eq!(validate_results_json(&good), Ok(1));
        // empty array, missing field, wrong type, malformed JSON
        assert!(validate_results_json("[\n]\n").is_err());
        let missing = good.replace("\"embeddings\":5,", "");
        assert!(validate_results_json(&missing).unwrap_err().contains("embeddings"));
        let wrong_type = good.replace("\"machines\":2", "\"machines\":\"two\"");
        assert!(validate_results_json(&wrong_type).unwrap_err().contains("machines"));
        assert!(validate_results_json("{not json").is_err());
    }

    #[test]
    fn governor_robustness_rows_are_self_verifying() {
        // `governor_robustness` panics unless: counts equal ground truth,
        // governor peak ≤ Φ, static peak ≥ 10 Φ. Smoke scale, workers 1 & 2.
        let records = governor_robustness(Scale(0.05), 42, 64 * 1024, &[1, 2]);
        assert_eq!(records.len(), 4);
        for pair in records.chunks(2) {
            assert_eq!(pair[0].system, "RADS-static");
            assert_eq!(pair[1].system, "RADS-governor");
            assert_eq!(pair[0].embeddings, pair[1].embeddings);
            assert!(pair[0].peak_tracked_bytes >= 10 * pair[0].budget_bytes);
            assert!(pair[1].peak_tracked_bytes <= pair[1].budget_bytes);
        }
    }

    #[test]
    fn parallel_speedup_records_identical_counts_per_worker_count() {
        let records = parallel_speedup(
            DatasetKind::Dblp,
            Scale(0.08),
            2,
            9,
            NetworkConfig::default(),
            64 * 1024,
            &["q1"],
            &[1, 2],
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].embeddings, records[1].embeddings);
        assert_eq!(records[0].workers, 1);
        assert_eq!(records[1].workers, 2);
        assert!(records.iter().all(|r| r.experiment == "speedup" && r.system == "RADS"));
    }
}
