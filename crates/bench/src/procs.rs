//! Multi-process cluster orchestration (the `rads-node` binary's engine
//! room).
//!
//! A **real** RADS cluster is N OS processes, one machine each: every
//! process builds the deterministic dataset stand-in and its partitioning
//! locally (the generators are seed-stable across processes, so no graph
//! data crosses the wire), starts a [`SocketNode`] — listener, daemon,
//! pipelined peer connections — and runs the unmodified
//! [`rads_core::engine::run_machine`] over the socket transport.
//!
//! Roles:
//!
//! * [`run_worker`] — one non-coordinator machine: run the engine, deliver
//!   a result frame to machine 0, wait for the shutdown order, drain.
//! * [`run_coordinator`] — machine 0: allocate the cluster's addresses,
//!   spawn the workers (the same binary, `worker` mode), run its own
//!   engine, collect every worker's result with a **hard deadline** (a
//!   deadlocked or crashed worker fails the run fast instead of hanging
//!   forever), broadcast shutdown and aggregate a [`ClusterSummary`].
//!
//! The summary is also emitted as single-line JSON so scripts, the
//! `sockets` experiment and the CI smoke test can parse one process's
//! stdout ([`ClusterSummary::parse_json`]) and compare the cluster's counts
//! against the in-process transport. `wire_bytes` in the summary are *real
//! framed bytes* summed over every process — the ground truth the simulated
//! cost model is judged against.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use rads_core::daemon::{new_group_queue, RadsDaemon};
use rads_core::engine::{run_machine, EngineConfig, MachineOutput, RoundDriver};
use rads_core::memory::MemoryBudget;
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;
use rads_partition::{LabelPropagationPartitioner, PartitionedGraph, Partitioner};
use rads_plan::{best_plan, PlannerConfig};
use rads_runtime::transport::scratch_socket_dir;
use rads_runtime::{
    ConfigError, Daemon, MachineContext, NetworkStats, NodeMonitor, PeerAddr, QueryId,
    SocketListener, SocketNode, TrafficSnapshot, TransportKind,
};

use crate::json::Json;

/// Environment variable selecting what the coordinator does when a worker
/// process dies mid-run (see [`FaultPolicy`]): `fail-fast` (default) or
/// `recover`.
pub const FAULT_POLICY_ENV: &str = "RADS_FAULT_POLICY";

/// What the coordinator does when it confirms a worker process died before
/// delivering its result.
///
/// Death is confirmed by `Child::try_wait` — the OS reaping the worker is
/// authoritative. Stale heartbeats (a worker that stopped streaming its
/// periodic metrics frames) are only *counted* (`heartbeats_missed` in the
/// [`ClusterSummary`]), never acted on: a slow machine is not a dead one,
/// and the run's hard deadline already bounds a genuine wedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Kill the surviving workers and fail the run with a structured
    /// per-machine report naming the dead machine(s). Nothing hangs: the
    /// report is produced within the run's deadline.
    #[default]
    FailFast,
    /// Kill the surviving workers and deterministically recompute the run
    /// on an in-process cluster, yielding the same embedding counts the
    /// socket cluster would have produced (the generators and the engine
    /// are seed-stable; `socket_transports_reproduce_the_simulator_counts`
    /// pins the equivalence). The *whole* run is recomputed, not just the
    /// dead machine's region groups: checkR/shareR work stealing means a
    /// lost machine's groups may already be half-processed elsewhere, so
    /// per-machine shares are not individually reconstructible — but the
    /// cluster total is deterministic, and that is what recovery restores.
    Recover,
}

impl FaultPolicy {
    /// CLI / summary name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPolicy::FailFast => "fail-fast",
            FaultPolicy::Recover => "recover",
        }
    }

    /// The policy selected by `RADS_FAULT_POLICY` (default
    /// [`FaultPolicy::FailFast`]); a typed error for anything else.
    pub fn from_env() -> Result<FaultPolicy, ConfigError> {
        Self::from_env_value(std::env::var(FAULT_POLICY_ENV).ok().as_deref())
    }

    /// [`FaultPolicy::from_env`] over an explicit value (`None` = unset),
    /// unit-testable without mutating the environment.
    pub fn from_env_value(raw: Option<&str>) -> Result<FaultPolicy, ConfigError> {
        match raw {
            None => Ok(FaultPolicy::default()),
            Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "fail-fast" | "failfast" => Ok(FaultPolicy::FailFast),
                "recover" => Ok(FaultPolicy::Recover),
                _ => Err(ConfigError {
                    var: FAULT_POLICY_ENV,
                    value: raw.to_string(),
                    expected: "\"fail-fast\" or \"recover\"",
                }),
            },
        }
    }
}

/// Everything every process of one cluster run must agree on. The
/// coordinator forwards these to its workers verbatim as CLI flags
/// ([`worker_args`]), which is what guarantees all N processes build the
/// same graph, partitioning and plan.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of machines (= processes).
    pub machines: usize,
    /// Which dataset stand-in to generate.
    pub dataset: DatasetKind,
    /// Generator scale.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Query name (see [`rads_graph::queries::query_by_name`]).
    pub query: String,
    /// Intra-machine worker threads per process.
    pub workers: usize,
    /// Per-group memory budget override (`None` = `RADS_MEMORY_BUDGET` /
    /// default).
    pub budget: Option<usize>,
    /// Round driver (serial oracle vs async scatter/harvest). Forwarded to
    /// workers so all processes run the same engine.
    pub driver: RoundDriver,
    /// Vertices per `fetchV` request (`None` = the engine default). The
    /// `overlap` experiment lowers this so a round spans many frames even
    /// on a same-host socket; results are identical for any value.
    pub fetch_chunk: Option<usize>,
    /// Cache fetched foreign vertices across rounds and groups (the
    /// engine's `enable_cache`, default true). `--no-cache` reproduces the
    /// paper's communication-heavy regime; counts are identical either way
    /// (the `ablation_cache` axis).
    pub cache: bool,
    /// Write this process's Chrome trace-event JSON here when the run ends
    /// (implies tracing on). On the coordinator this is the *base* path:
    /// machine 0 writes it verbatim, worker `K` writes `<path>.m<K>` (the
    /// coordinator derives the per-worker path in [`worker_args`]).
    pub trace_out: Option<PathBuf>,
    /// Write this process's metrics snapshot here when the run ends
    /// (implies metrics on): JSON at the path itself, Prometheus text at
    /// `<path>.prom`. Same per-machine `.m<K>` derivation as `trace_out`.
    pub metrics_out: Option<PathBuf>,
    /// Coordinator-side: what to do when a worker process dies mid-run.
    /// Not forwarded to workers — only the coordinator acts on it.
    pub fault_policy: FaultPolicy,
    /// Chaos mode: the coordinator SIGKILLs the highest-id worker this many
    /// milliseconds after spawning it — a real mid-run process loss, used by
    /// the chaos suite to prove the fault policy. Coordinator-side only.
    pub chaos_kill_ms: Option<u64>,
}

/// The artifact path of machine `machine` under base path `base`: machine 0
/// (the coordinator) owns the base path itself, worker `K` gets `base.mK`.
pub fn machine_artifact(base: &Path, machine: usize) -> PathBuf {
    if machine == 0 {
        base.to_path_buf()
    } else {
        PathBuf::from(format!("{}.m{machine}", base.display()))
    }
}

/// Sibling path of a metrics JSON artifact holding the Prometheus text
/// rendering.
pub fn prometheus_sibling(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.prom", path.display()))
}

/// Writes this process's observability artifacts (trace JSON, metrics
/// JSON with its Prometheus text sibling) to the paths in `spec`, if any.
/// Called once per process after its node finished shutting down, so
/// daemon-thread trace buffers have flushed.
fn write_observability_artifacts(spec: &ClusterSpec) -> Result<(), String> {
    if let Some(path) = &spec.trace_out {
        std::fs::write(path, rads_obs::drain_chrome_trace())
            .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
    }
    if let Some(path) = &spec.metrics_out {
        let snapshot = rads_obs::Registry::global().snapshot();
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("cannot write metrics to {}: {e}", path.display()))?;
        let prom = prometheus_sibling(path);
        std::fs::write(&prom, snapshot.to_prometheus())
            .map_err(|e| format!("cannot write metrics to {}: {e}", prom.display()))?;
    }
    Ok(())
}

/// Parses a dataset stand-in by its paper name (case-insensitive).
pub fn dataset_by_name(name: &str) -> Option<DatasetKind> {
    DatasetKind::all().into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Builds the deterministic partitioned graph every process of the cluster
/// agrees on (same generator, same seed, same partitioner as
/// [`crate::build_cluster`]).
pub fn build_partitioned(spec: &ClusterSpec) -> Arc<PartitionedGraph> {
    let dataset = generate(spec.dataset, Scale(spec.scale), spec.seed);
    let partitioning = LabelPropagationPartitioner::default().partition(&dataset.graph, spec.machines);
    Arc::new(PartitionedGraph::build(&dataset.graph, partitioning))
}

/// The engine configuration of a node process — mirrors
/// `RadsConfig::default()` so a multi-process run is comparable 1:1 with
/// `run_rads` on an in-process cluster.
fn engine_config(spec: &ClusterSpec) -> EngineConfig {
    let budget = match spec.budget {
        Some(bytes) => MemoryBudget::from_bytes(bytes),
        None => MemoryBudget::default_from_env(),
    };
    engine_config_with(spec, budget)
}

/// [`engine_config`] with the memory budget supplied by the caller instead
/// of resolved from `spec.budget` / the environment. The serving mode uses
/// this: a resident daemon resolves its budget **once at startup** and then
/// derives every query's config from that snapshot (plus the per-query
/// client override), so flipping `RADS_MEMORY_BUDGET` under a running
/// server cannot change behaviour mid-stream.
pub(crate) fn engine_config_with(spec: &ClusterSpec, budget: MemoryBudget) -> EngineConfig {
    let default_chunk = EngineConfig::default().fetch_chunk_vertices;
    EngineConfig {
        budget,
        seed: 42,
        workers: spec.workers,
        driver: spec.driver,
        fetch_chunk_vertices: spec.fetch_chunk.unwrap_or(default_chunk),
        enable_cache: spec.cache,
        ..EngineConfig::default()
    }
}

/// Interval at which a worker streams its metrics snapshot to the
/// coordinator over the wire (a [`rads_runtime::wire::FrameKind::Metrics`]
/// frame; newer frames replace older on the receiving side).
const METRICS_TICK: Duration = Duration::from_millis(250);

/// Starts this machine's node and runs its engine to completion. Returns
/// the node (still serving its daemon — the cluster may not be done), the
/// engine output and this process's real wire traffic.
///
/// While the engine runs, a non-coordinator machine with metrics enabled
/// streams its registry snapshot to machine 0 every [`METRICS_TICK`], so
/// the coordinator holds a recent view of the whole cluster at any moment.
fn run_node_engine(
    spec: &ClusterSpec,
    machine: usize,
    addrs: Vec<PeerAddr>,
    monitor_tx: Option<std::sync::mpsc::Sender<NodeMonitor>>,
) -> Result<(SocketNode, MachineOutput, Arc<NetworkStats>, Duration), String> {
    rads_obs::set_trace_process(machine as u64);
    let pattern = queries::query_by_name(&spec.query)
        .ok_or_else(|| format!("unknown query {:?}", spec.query))?;
    // Bind the listener *before* the expensive graph build: peers whose
    // generation finishes first connect immediately (their requests queue in
    // the accept backlog), instead of burning their bounded connect-retry
    // window against a process that is still generating the dataset.
    let listener = SocketListener::bind(&addrs[machine])
        .map_err(|e| format!("machine {machine}: cannot bind {}: {e}", addrs[machine]))?;
    let partitioned = build_partitioned(spec);
    let stats = Arc::new(NetworkStats::new(spec.machines));
    let queue = new_group_queue();
    let daemon: Arc<dyn Daemon> =
        Arc::new(RadsDaemon::new(partitioned.clone(), machine, queue.clone()));
    let node = SocketNode::start_with_listener(machine, addrs, listener, daemon.clone(), stats.clone());
    if let Some(tx) = monitor_tx {
        // hand the coordinator's main thread a liveness view before the
        // engine starts (the node itself stays on this thread)
        let _ = tx.send(node.monitor());
    }
    let ctx = MachineContext::assemble(partitioned, node.transport(), daemon);
    let plan = best_plan(&pattern, &PlannerConfig { rho: 1.0 });
    let config = engine_config(spec);
    let ticker = if machine != 0 && rads_obs::metrics_enabled() {
        let publisher = node.metrics_publisher(0);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("rads-metrics-ticker".to_string())
            .spawn(move || {
                while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::sleep(METRICS_TICK);
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    publisher.send(&rads_obs::Registry::global().snapshot().encode());
                }
            })
            .expect("spawn metrics ticker thread");
        Some((stop, handle))
    } else {
        None
    };
    let start = Instant::now();
    let output = run_machine(&ctx, &pattern, &plan, &config, queue);
    let elapsed = start.elapsed();
    if let Some((stop, handle)) = ticker {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    Ok((node, output, stats, elapsed))
}

// --------------------------------------------------------------------------
// result payload (worker → coordinator), little-endian fixed layout
// --------------------------------------------------------------------------

/// What one machine reports into the cluster summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSummary {
    /// Machine id.
    pub machine: usize,
    /// Embeddings this machine found.
    pub embeddings: u64,
    /// Embeddings found in the SM-E phase.
    pub sme_embeddings: u64,
    /// Real framed bytes this process put on the wire.
    pub wire_bytes: u64,
    /// Remote requests this process sent.
    pub wire_messages: u64,
    /// EWMA (µs) of the first-response wait after scattering a round's
    /// *demand* `fetchV` chunks — ≈ one link round trip, and the signal the
    /// prefetcher consults ([`rads_core::engine::EngineStats::fetch_wait_micros`]).
    pub fetch_wait_demand_us: u64,
    /// EWMA (µs) of the wait to harvest one *prefetched* chunk — the
    /// residual stall the group-ahead pipeline failed to hide.
    pub fetch_wait_prefetch_us: u64,
    /// This machine's engine wall-clock in milliseconds.
    pub elapsed_ms: f64,
    /// RPCs this machine transparently re-issued after a transient
    /// transport failure (the retry/backoff layer in
    /// [`rads_runtime::MachineContext`]).
    pub rpc_retries: u64,
    /// Dead peer connections this machine replaced with a fresh dial.
    pub reconnects: u64,
}

pub(crate) const RESULT_PAYLOAD_BYTES: usize = 76;

pub(crate) fn encode_result(m: &MachineSummary) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RESULT_PAYLOAD_BYTES);
    buf.extend_from_slice(&(m.machine as u32).to_le_bytes());
    buf.extend_from_slice(&m.embeddings.to_le_bytes());
    buf.extend_from_slice(&m.sme_embeddings.to_le_bytes());
    buf.extend_from_slice(&m.wire_bytes.to_le_bytes());
    buf.extend_from_slice(&m.wire_messages.to_le_bytes());
    buf.extend_from_slice(&m.fetch_wait_demand_us.to_le_bytes());
    buf.extend_from_slice(&m.fetch_wait_prefetch_us.to_le_bytes());
    buf.extend_from_slice(&m.elapsed_ms.to_bits().to_le_bytes());
    buf.extend_from_slice(&m.rpc_retries.to_le_bytes());
    buf.extend_from_slice(&m.reconnects.to_le_bytes());
    buf
}

pub(crate) fn decode_result(buf: &[u8]) -> Result<MachineSummary, String> {
    if buf.len() != RESULT_PAYLOAD_BYTES {
        return Err(format!(
            "result payload of {} bytes, expected {RESULT_PAYLOAD_BYTES}",
            buf.len()
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
    Ok(MachineSummary {
        machine: u32_at(0) as usize,
        embeddings: u64_at(4),
        sme_embeddings: u64_at(12),
        wire_bytes: u64_at(20),
        wire_messages: u64_at(28),
        fetch_wait_demand_us: u64_at(36),
        fetch_wait_prefetch_us: u64_at(44),
        elapsed_ms: f64::from_bits(u64_at(52)),
        rpc_retries: u64_at(60),
        reconnects: u64_at(68),
    })
}

pub(crate) fn machine_summary(
    machine: usize,
    output: &MachineOutput,
    wire: &TrafficSnapshot,
    elapsed: Duration,
    reconnects: u64,
) -> MachineSummary {
    MachineSummary {
        machine,
        embeddings: output.count,
        sme_embeddings: output.stats.sme_embeddings,
        wire_bytes: wire.total_bytes,
        wire_messages: wire.messages,
        fetch_wait_demand_us: output.stats.fetch_wait_micros,
        fetch_wait_prefetch_us: output.stats.prefetch_wait_micros,
        elapsed_ms: elapsed.as_secs_f64() * 1000.0,
        rpc_retries: output.stats.rpc_retries,
        reconnects,
    }
}

// --------------------------------------------------------------------------
// worker
// --------------------------------------------------------------------------

/// Runs one worker process: engine → result frame to the coordinator →
/// wait for the shutdown order → drain. `addrs[machine]` is this worker's
/// listen address.
pub fn run_worker(
    spec: &ClusterSpec,
    machine: usize,
    addrs: Vec<PeerAddr>,
    timeout: Duration,
) -> Result<(), String> {
    if machine == 0 || machine >= spec.machines {
        return Err(format!("worker machine id {machine} out of range 1..{}", spec.machines));
    }
    let (node, output, stats, elapsed) = run_node_engine(spec, machine, addrs, None)?;
    let wire = stats.snapshot();
    rads_core::obs::publish_traffic(&wire);
    // The final metrics frame travels on the same ordered connection as the
    // result frame below, so once the coordinator has collected every
    // result, its metrics map holds every machine's *final* snapshot.
    if rads_obs::metrics_enabled() {
        node.metrics_publisher(0).send(&rads_obs::Registry::global().snapshot().encode());
    }
    let summary = machine_summary(machine, &output, &wire, elapsed, node.reconnects());
    node.send_result(0, QueryId::SOLO, &encode_result(&summary))
        .map_err(|e| format!("machine {machine}: cannot deliver result to coordinator: {e}"))?;
    let ordered = node.wait_shutdown(timeout);
    node.finish_shutdown();
    write_observability_artifacts(spec)?;
    if ordered {
        Ok(())
    } else {
        Err(format!(
            "machine {machine}: no shutdown order within {}s of finishing",
            timeout.as_secs()
        ))
    }
}

// --------------------------------------------------------------------------
// coordinator
// --------------------------------------------------------------------------

/// The aggregated outcome of one multi-process cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Query name.
    pub query: String,
    /// Dataset name.
    pub dataset: String,
    /// Transport name (`uds` / `tcp`).
    pub transport: String,
    /// Number of machine processes.
    pub machines: usize,
    /// Intra-machine worker threads per process.
    pub workers: usize,
    /// Embeddings over all machines.
    pub total_embeddings: u64,
    /// Real framed bytes over all processes.
    pub wire_bytes: u64,
    /// Remote requests over all processes.
    pub wire_messages: u64,
    /// Coordinator wall-clock (spawn to all-results) in milliseconds.
    pub elapsed_ms: f64,
    /// Cluster-wide scalar metrics, sorted by name: every worker's final
    /// registry snapshot (streamed over the wire as metrics frames) absorbed
    /// into the coordinator's own — counters summed, gauges maxed,
    /// histograms reduced to `<name>_sum` / `<name>_count`. Empty when
    /// metrics are disabled.
    pub metrics: Vec<(String, u64)>,
    /// The fault policy the coordinator ran under
    /// ([`FaultPolicy::name`]).
    pub fault_policy: String,
    /// RPCs transparently re-issued after transient transport failures,
    /// over all machines.
    pub rpc_retries: u64,
    /// Dead peer connections replaced with a fresh dial, over all machines.
    pub reconnects: u64,
    /// Heartbeat intervals in which a worker that had already been heard
    /// from went silent (no metrics/result frame for more than the
    /// staleness threshold), summed over workers. Advisory only — worker
    /// death is confirmed by process exit, never inferred from this.
    pub heartbeats_missed: u64,
    /// Machines whose results were recomputed in-process after their worker
    /// process died ([`FaultPolicy::Recover`]). Empty on a clean run.
    pub machines_recovered: Vec<usize>,
    /// Region groups belonging to the recovered machines that the
    /// deterministic rebuild recomputed. Zero on a clean run.
    pub groups_recovered: u64,
    /// Per-machine breakdown, indexed by machine id.
    pub per_machine: Vec<MachineSummary>,
}

/// Flattens a snapshot into sorted `(name, value)` scalar pairs: counters
/// and gauges verbatim, histograms as `<name>_sum` / `<name>_count`.
fn scalar_metrics(snapshot: &rads_obs::MetricsSnapshot) -> Vec<(String, u64)> {
    let mut pairs = Vec::with_capacity(snapshot.entries.len());
    for entry in &snapshot.entries {
        match &entry.value {
            rads_obs::MetricValue::Counter(value) | rads_obs::MetricValue::Gauge(value) => {
                pairs.push((entry.name.clone(), *value));
            }
            rads_obs::MetricValue::Histogram { count, sum, .. } => {
                pairs.push((format!("{}_count", entry.name), *count));
                pairs.push((format!("{}_sum", entry.name), *sum));
            }
        }
    }
    pairs.sort();
    pairs
}

impl ClusterSummary {
    /// Renders the summary as one line of JSON (the coordinator's stdout
    /// contract).
    pub fn to_json(&self) -> String {
        let per_machine: Vec<String> = self
            .per_machine
            .iter()
            .map(|m| {
                format!(
                    concat!(
                        "{{\"machine\":{},\"embeddings\":{},\"sme_embeddings\":{},",
                        "\"wire_bytes\":{},\"wire_messages\":{},",
                        "\"fetch_wait_demand_us\":{},\"fetch_wait_prefetch_us\":{},",
                        "\"elapsed_ms\":{:.3},\"rpc_retries\":{},\"reconnects\":{}}}"
                    ),
                    m.machine,
                    m.embeddings,
                    m.sme_embeddings,
                    m.wire_bytes,
                    m.wire_messages,
                    m.fetch_wait_demand_us,
                    m.fetch_wait_prefetch_us,
                    m.elapsed_ms,
                    m.rpc_retries,
                    m.reconnects,
                )
            })
            .collect();
        let metrics: Vec<String> =
            self.metrics.iter().map(|(name, value)| format!("\"{name}\":{value}")).collect();
        let machines_recovered: Vec<String> =
            self.machines_recovered.iter().map(|m| m.to_string()).collect();
        format!(
            concat!(
                "{{\"query\":\"{}\",\"dataset\":\"{}\",\"transport\":\"{}\",",
                "\"machines\":{},\"workers\":{},\"total_embeddings\":{},",
                "\"wire_bytes\":{},\"wire_messages\":{},\"elapsed_ms\":{:.3},",
                "\"fault_policy\":\"{}\",\"resilience\":{{",
                "\"rpc_retries\":{},\"reconnects\":{},\"heartbeats_missed\":{},",
                "\"machines_recovered\":[{}],\"groups_recovered\":{}}},",
                "\"metrics\":{{{}}},\"per_machine\":[{}]}}"
            ),
            self.query,
            self.dataset,
            self.transport,
            self.machines,
            self.workers,
            self.total_embeddings,
            self.wire_bytes,
            self.wire_messages,
            self.elapsed_ms,
            self.fault_policy,
            self.rpc_retries,
            self.reconnects,
            self.heartbeats_missed,
            machines_recovered.join(","),
            self.groups_recovered,
            metrics.join(","),
            per_machine.join(","),
        )
    }

    /// Parses a summary back from coordinator output: the last line that
    /// parses as a JSON object wins (diagnostics may precede it).
    pub fn parse_json(output: &str) -> Result<ClusterSummary, String> {
        let line = output
            .lines()
            .rev()
            .find(|l| l.trim_start().starts_with('{'))
            .ok_or("no JSON object line in coordinator output")?;
        let v = Json::parse(line.trim())?;
        let str_field = |k: &str| {
            v.get(k).and_then(Json::as_str).map(str::to_string).ok_or(format!("missing {k}"))
        };
        let u64_field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("missing {k}"));
        let mut per_machine = Vec::new();
        for row in v.get("per_machine").and_then(Json::as_array).ok_or("missing per_machine")? {
            let m = |k: &str| row.get(k).and_then(Json::as_u64).ok_or(format!("missing per_machine {k}"));
            per_machine.push(MachineSummary {
                machine: m("machine")? as usize,
                embeddings: m("embeddings")?,
                sme_embeddings: m("sme_embeddings")?,
                wire_bytes: m("wire_bytes")?,
                wire_messages: m("wire_messages")?,
                fetch_wait_demand_us: m("fetch_wait_demand_us")?,
                fetch_wait_prefetch_us: m("fetch_wait_prefetch_us")?,
                elapsed_ms: row
                    .get("elapsed_ms")
                    .and_then(Json::as_f64)
                    .ok_or("missing per_machine elapsed_ms")?,
                // absent in pre-resilience producers
                rpc_retries: m("rpc_retries").unwrap_or(0),
                reconnects: m("reconnects").unwrap_or(0),
            });
        }
        // tolerate a missing metrics object (older producers / disabled)
        let mut metrics = Vec::new();
        if let Some(members) = v.get("metrics").and_then(Json::as_object) {
            for (name, value) in members {
                let value =
                    value.as_u64().ok_or(format!("non-integer metrics value for {name}"))?;
                metrics.push((name.clone(), value));
            }
        }
        // tolerate a missing resilience object (pre-resilience producers)
        let resilience = v.get("resilience");
        let res_u64 = |k: &str| {
            resilience.and_then(|r| r.get(k)).and_then(Json::as_u64).unwrap_or(0)
        };
        let machines_recovered = resilience
            .and_then(|r| r.get("machines_recovered"))
            .and_then(Json::as_array)
            .map(|rows| rows.iter().filter_map(Json::as_u64).map(|m| m as usize).collect())
            .unwrap_or_default();
        Ok(ClusterSummary {
            query: str_field("query")?,
            dataset: str_field("dataset")?,
            transport: str_field("transport")?,
            machines: u64_field("machines")? as usize,
            workers: u64_field("workers")? as usize,
            total_embeddings: u64_field("total_embeddings")?,
            wire_bytes: u64_field("wire_bytes")?,
            wire_messages: u64_field("wire_messages")?,
            elapsed_ms: v.get("elapsed_ms").and_then(Json::as_f64).ok_or("missing elapsed_ms")?,
            metrics,
            fault_policy: v
                .get("fault_policy")
                .and_then(Json::as_str)
                .unwrap_or(FaultPolicy::FailFast.name())
                .to_string(),
            rpc_retries: res_u64("rpc_retries"),
            reconnects: res_u64("reconnects"),
            heartbeats_missed: res_u64("heartbeats_missed"),
            machines_recovered,
            groups_recovered: res_u64("groups_recovered"),
            per_machine,
        })
    }
}

/// Allocates one listen address per machine: fresh Unix socket paths, or
/// free loopback TCP ports (probed by binding port 0 and releasing — a
/// worker landing on a just-taken port fails its bind loudly rather than
/// hanging).
pub fn allocate_addrs(kind: TransportKind, machines: usize) -> Result<Vec<PeerAddr>, String> {
    match kind.effective() {
        TransportKind::Uds => {
            let dir = scratch_socket_dir();
            Ok((0..machines).map(|m| PeerAddr::Uds(dir.join(format!("m{m}.sock")))).collect())
        }
        TransportKind::Tcp => {
            let listeners: Vec<std::net::TcpListener> = (0..machines)
                .map(|_| {
                    std::net::TcpListener::bind("127.0.0.1:0")
                        .map_err(|e| format!("cannot probe a free port: {e}"))
                })
                .collect::<Result<_, _>>()?;
            listeners
                .iter()
                .map(|l| {
                    l.local_addr()
                        .map(|a| PeerAddr::Tcp(a.to_string()))
                        .map_err(|e| format!("cannot read probed port: {e}"))
                })
                .collect()
        }
        TransportKind::InProcess => {
            Err("a multi-process cluster needs a socket transport (uds or tcp)".to_string())
        }
    }
}

/// The `worker`-mode argument vector for machine `machine` of `spec` — the
/// single place the coordinator→worker CLI contract lives.
pub fn worker_args(
    spec: &ClusterSpec,
    machine: usize,
    addrs: &[PeerAddr],
    timeout: Duration,
) -> Vec<String> {
    let addr_list =
        addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
    let mut args = vec![
        "worker".to_string(),
        "--machine".to_string(),
        machine.to_string(),
        "--machines".to_string(),
        spec.machines.to_string(),
        "--addrs".to_string(),
        addr_list,
        "--dataset".to_string(),
        spec.dataset.name().to_string(),
        "--scale".to_string(),
        format!("{}", spec.scale),
        "--seed".to_string(),
        spec.seed.to_string(),
        "--query".to_string(),
        spec.query.clone(),
        "--workers".to_string(),
        spec.workers.to_string(),
        "--driver".to_string(),
        spec.driver.name().to_string(),
        "--timeout-secs".to_string(),
        timeout.as_secs().max(1).to_string(),
    ];
    if let Some(budget) = spec.budget {
        args.push("--budget".to_string());
        args.push(budget.to_string());
    }
    if let Some(chunk) = spec.fetch_chunk {
        args.push("--fetch-chunk".to_string());
        args.push(chunk.to_string());
    }
    if !spec.cache {
        args.push("--no-cache".to_string());
    }
    if let Some(base) = &spec.trace_out {
        args.push("--trace-out".to_string());
        args.push(machine_artifact(base, machine).display().to_string());
    }
    if let Some(base) = &spec.metrics_out {
        args.push("--metrics-out".to_string());
        args.push(machine_artifact(base, machine).display().to_string());
    }
    args
}

fn kill_children(children: &mut [(usize, Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// A worker that has been heard from (its heartbeat carrier is the periodic
/// metrics stream, [`METRICS_TICK`]) counts missed heartbeats once it has
/// been silent this long. Advisory accounting only — never a death verdict.
const HEARTBEAT_STALE: Duration = Duration::from_millis(1000);

/// The coordinator's per-poll watchdog over its worker processes: confirms
/// deaths via `try_wait` (authoritative — the OS reaped the process), fires
/// the chaos kill when due, and keeps the advisory missed-heartbeat
/// account from the node's heartbeat map.
struct ClusterWatch {
    children: Arc<StdMutex<Vec<(usize, Child)>>>,
    monitor_rx: std::sync::mpsc::Receiver<NodeMonitor>,
    monitor: Option<NodeMonitor>,
    chaos_at: Option<Instant>,
    /// Highest missed-heartbeat count observed per machine (staleness is
    /// measured against the machine's *latest* frame, so a recovered stream
    /// resets the instantaneous count; the max preserves the episode).
    missed: HashMap<usize, u64>,
    /// Workers confirmed dead with a non-success exit status, in discovery
    /// order: `(machine, status)`.
    dead: Vec<(usize, String)>,
}

impl ClusterWatch {
    fn new(
        children: Arc<StdMutex<Vec<(usize, Child)>>>,
        monitor_rx: std::sync::mpsc::Receiver<NodeMonitor>,
        chaos_at: Option<Instant>,
    ) -> ClusterWatch {
        ClusterWatch { children, monitor_rx, monitor: None, chaos_at, missed: HashMap::new(), dead: Vec::new() }
    }

    /// One poll tick. Returns true if any worker is now confirmed dead.
    fn poll(&mut self) -> bool {
        if self.monitor.is_none() {
            self.monitor = self.monitor_rx.try_recv().ok();
        }
        if let Some(at) = self.chaos_at {
            if Instant::now() >= at {
                self.chaos_at = None;
                // SIGKILL the highest-id worker: a real, unannounced process
                // loss in the middle of the run
                if let Some((_, child)) =
                    self.children.lock().expect("children lock").last_mut()
                {
                    let _ = child.kill();
                }
            }
        }
        if rads_obs::metrics_enabled() {
            if let Some(monitor) = &self.monitor {
                for (machine, last) in monitor.heartbeats() {
                    let silent = last.elapsed();
                    if silent > HEARTBEAT_STALE {
                        let now_missed = 1 + (silent - HEARTBEAT_STALE).as_millis() as u64
                            / METRICS_TICK.as_millis() as u64;
                        let entry = self.missed.entry(machine).or_insert(0);
                        *entry = (*entry).max(now_missed);
                    }
                }
            }
        }
        for (machine, child) in self.children.lock().expect("children lock").iter_mut() {
            if self.dead.iter().any(|(m, _)| m == machine) {
                continue;
            }
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    self.dead.push((*machine, status.to_string()));
                }
            }
        }
        !self.dead.is_empty()
    }

    fn heartbeats_missed(&self) -> u64 {
        self.missed.values().sum()
    }
}

/// One-line JSON report of a worker-loss event: which policy was in force
/// and which machines died with what status. This is the "structured
/// per-machine error report" of the fail-fast policy — embedded in the
/// `Err` string so callers (and the chaos suite) can parse it.
fn fault_report(spec: &ClusterSpec, dead: &[(usize, String)]) -> String {
    let dead_json: Vec<String> = dead
        .iter()
        .map(|(machine, status)| format!("{{\"machine\":{machine},\"status\":\"{status}\"}}"))
        .collect();
    format!(
        "{{\"fault\":\"worker-loss\",\"policy\":\"{}\",\"machines\":{},\"dead\":[{}]}}",
        spec.fault_policy.name(),
        spec.machines,
        dead_json.join(","),
    )
}

/// The [`FaultPolicy::Recover`] path: after confirmed worker loss, rebuild
/// the run deterministically on an in-process cluster (same generators,
/// same partitioning, same engine — see the policy's doc for why the whole
/// run is recomputed rather than only the dead machine's region groups) and
/// synthesize the summary the socket cluster would have produced. Embedding
/// counts are bit-identical to a clean run; the wire columns are zero
/// because the rebuild never touches a socket.
fn recover_in_process(
    spec: &ClusterSpec,
    kind: TransportKind,
    dead: &[(usize, String)],
    heartbeats_missed: u64,
    start: Instant,
) -> Result<ClusterSummary, String> {
    use rads_core::{run_rads, RadsConfig};
    let pattern = queries::query_by_name(&spec.query)
        .ok_or_else(|| format!("unknown query {:?}", spec.query))?;
    let partitioned = build_partitioned(spec);
    let cluster = rads_runtime::Cluster::with_transport(partitioned, TransportKind::InProcess);
    let econf = engine_config(spec);
    let config = RadsConfig {
        memory_budget: econf.budget,
        workers: spec.workers,
        round_driver: spec.driver,
        fetch_chunk_vertices: econf.fetch_chunk_vertices,
        enable_cache: spec.cache,
        ..RadsConfig::default()
    };
    let rebuild_start = Instant::now();
    let outcome = run_rads(&cluster, &pattern, &config);
    let rebuild_ms = rebuild_start.elapsed().as_secs_f64() * 1000.0;
    let machines_recovered: Vec<usize> = dead.iter().map(|(m, _)| *m).collect();
    let groups_recovered: u64 = machines_recovered
        .iter()
        .map(|&m| outcome.per_machine[m].stats.groups_created as u64)
        .sum();
    if rads_obs::metrics_enabled() {
        let registry = rads_obs::Registry::global();
        registry.counter("rads_heartbeats_missed_total").add(heartbeats_missed);
        registry.counter("rads_region_groups_recovered_total").add(groups_recovered);
    }
    let per_machine: Vec<MachineSummary> = outcome
        .per_machine
        .iter()
        .enumerate()
        .map(|(machine, report)| MachineSummary {
            machine,
            embeddings: report.count,
            sme_embeddings: report.stats.sme_embeddings,
            wire_bytes: 0,
            wire_messages: 0,
            fetch_wait_demand_us: report.stats.fetch_wait_micros,
            fetch_wait_prefetch_us: report.stats.prefetch_wait_micros,
            elapsed_ms: rebuild_ms,
            rpc_retries: report.stats.rpc_retries,
            reconnects: 0,
        })
        .collect();
    let metrics = if rads_obs::metrics_enabled() {
        scalar_metrics(&rads_obs::Registry::global().snapshot())
    } else {
        Vec::new()
    };
    Ok(ClusterSummary {
        query: spec.query.clone(),
        dataset: spec.dataset.name().to_string(),
        transport: kind.name().to_string(),
        machines: spec.machines,
        workers: spec.workers,
        total_embeddings: outcome.total_embeddings,
        wire_bytes: 0,
        wire_messages: 0,
        elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
        metrics,
        fault_policy: spec.fault_policy.name().to_string(),
        rpc_retries: per_machine.iter().map(|m| m.rpc_retries).sum(),
        reconnects: 0,
        heartbeats_missed,
        machines_recovered,
        groups_recovered,
        per_machine,
    })
}

/// Runs a whole multi-process cluster: spawns `spec.machines - 1` workers
/// (the `node_binary` in `worker` mode), acts as machine 0, and enforces
/// `timeout` as a hard deadline on the whole run — every phase fails with
/// a clean `Err` (workers killed, scratch sockets removed), never a hang.
/// Machine 0's engine runs on a helper thread polled by the main thread,
/// so the deadline also covers the enumeration itself: a worker that
/// stays alive but wedges mid-request blocks the engine in a recv with no
/// timeout. On that path the unjoinable engine thread is abandoned — both
/// real callers (`rads-node`, `experiments`) exit shortly after the `Err`,
/// so nothing outlives it in practice.
pub fn run_coordinator(
    spec: &ClusterSpec,
    kind: TransportKind,
    node_binary: &Path,
    timeout: Duration,
) -> Result<ClusterSummary, String> {
    let kind = kind.effective();
    if spec.machines == 0 {
        return Err("a cluster needs at least one machine".to_string());
    }
    let addrs = allocate_addrs(kind, spec.machines)?;
    let children: Arc<StdMutex<Vec<(usize, Child)>>> = Arc::new(StdMutex::new(Vec::new()));
    for machine in 1..spec.machines {
        let child = Command::new(node_binary)
            .args(worker_args(spec, machine, &addrs, timeout))
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {machine} ({}): {e}", node_binary.display()))?;
        children.lock().expect("children lock").push((machine, child));
    }

    let start = Instant::now();
    let deadline = start + timeout;
    // Machine 0's engine runs on a watched thread so the deadline also
    // covers the enumeration itself: a worker that stays alive but wedges
    // mid-request blocks the engine in a recv with no timeout, out of
    // reach of any return path. On deadline the engine thread is abandoned
    // (it is unjoinable by construction — both real callers exit shortly
    // after the Err) and the workers are killed.
    let (monitor_tx, monitor_rx) = std::sync::mpsc::channel();
    let mut watch = ClusterWatch::new(
        children.clone(),
        monitor_rx,
        spec.chaos_kill_ms.map(|ms| start + Duration::from_millis(ms)),
    );
    let engine_rx = {
        let (tx, rx) = std::sync::mpsc::channel();
        let spec = spec.clone();
        let engine_addrs = addrs.clone();
        std::thread::Builder::new()
            .name("rads-coordinator-engine".to_string())
            .spawn(move || {
                let _ = tx.send(run_node_engine(&spec, 0, engine_addrs, Some(monitor_tx)));
            })
            .expect("spawn coordinator engine thread");
        rx
    };
    // Dispatches a confirmed worker loss per the spec's fault policy:
    // fail-fast kills the survivors and surfaces the structured report;
    // recover kills the survivors (their partial results are unusable — the
    // rebuild is all-machine) and recomputes in-process. Either way the
    // coordinator's own engine thread is abandoned: it may be blocked on,
    // or panicking over, a connection to a machine that no longer exists.
    let on_worker_loss = |watch: &ClusterWatch| -> Result<ClusterSummary, String> {
        kill_children(&mut children.lock().expect("children lock"));
        match spec.fault_policy {
            FaultPolicy::FailFast => Err(format!(
                "fault policy fail-fast: worker machine(s) {:?} died mid-run; report: {}",
                watch.dead.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
                fault_report(spec, &watch.dead),
            )),
            FaultPolicy::Recover => {
                recover_in_process(spec, kind, &watch.dead, watch.heartbeats_missed(), start)
            }
        }
    };
    let result = (|| {
        let engine_outcome = loop {
            match engine_rx.try_recv() {
                Ok(outcome) => break outcome,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    // The engine thread panicking is itself a worker-loss
                    // symptom: its RPCs to the dead machine exhausted their
                    // retries. Confirm via the process table before blaming
                    // the engine.
                    watch.poll();
                    if !watch.dead.is_empty() {
                        return on_worker_loss(&watch);
                    }
                    return Err("coordinator engine thread died without reporting".to_string());
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    if watch.poll() {
                        return on_worker_loss(&watch);
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "hard timeout: coordinator engine still running after {}s — \
                             treating the transport as deadlocked",
                            timeout.as_secs()
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        };
        let (node, output, stats, elapsed0) = engine_outcome?;
        let worker_ids: Vec<usize> = (1..spec.machines).collect();
        let mut payloads = Vec::new();
        if !worker_ids.is_empty() {
            loop {
                match node.wait_results(QueryId::SOLO, &worker_ids, Duration::from_millis(500)) {
                    Ok(p) => {
                        payloads = p;
                        break;
                    }
                    Err(missing) => {
                        if watch.poll() {
                            return on_worker_loss(&watch);
                        }
                        if Instant::now() >= deadline {
                            return Err(format!(
                                "hard timeout: no result from machines {missing:?} within {}s — \
                                 treating the transport as deadlocked",
                                timeout.as_secs()
                            ));
                        }
                    }
                }
            }
        }
        let wire0 = stats.snapshot();
        rads_core::obs::publish_traffic(&wire0);
        let heartbeats_missed = watch.heartbeats_missed();
        if rads_obs::metrics_enabled() {
            rads_obs::Registry::global()
                .counter("rads_heartbeats_missed_total")
                .add(heartbeats_missed);
        }
        // Every result frame followed its machine's final metrics frame on
        // the same ordered connection, so the metrics map now holds each
        // worker's final snapshot; absorb them into the coordinator's own.
        let mut metrics = Vec::new();
        if rads_obs::metrics_enabled() {
            let mut snapshot = rads_obs::Registry::global().snapshot();
            for (machine, payload) in node.take_metrics() {
                match rads_obs::MetricsSnapshot::decode(&payload) {
                    Ok(worker) => snapshot.absorb(&worker),
                    Err(e) => {
                        return Err(format!(
                            "machine {machine} sent an undecodable metrics frame: {e}"
                        ))
                    }
                }
            }
            metrics = scalar_metrics(&snapshot);
        }
        let reconnects0 = node.reconnects();
        node.broadcast_shutdown();
        node.finish_shutdown();
        write_observability_artifacts(spec)?;

        let mut per_machine =
            vec![machine_summary(0, &output, &wire0, elapsed0, reconnects0)];
        for payload in payloads {
            per_machine.push(decode_result(&payload)?);
        }
        per_machine.sort_by_key(|m| m.machine);
        Ok(ClusterSummary {
            query: spec.query.clone(),
            dataset: spec.dataset.name().to_string(),
            transport: kind.name().to_string(),
            machines: spec.machines,
            workers: spec.workers,
            total_embeddings: per_machine.iter().map(|m| m.embeddings).sum(),
            wire_bytes: per_machine.iter().map(|m| m.wire_bytes).sum(),
            wire_messages: per_machine.iter().map(|m| m.wire_messages).sum(),
            elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
            metrics,
            fault_policy: spec.fault_policy.name().to_string(),
            rpc_retries: per_machine.iter().map(|m| m.rpc_retries).sum(),
            reconnects: per_machine.iter().map(|m| m.reconnects).sum(),
            heartbeats_missed,
            machines_recovered: Vec::new(),
            groups_recovered: 0,
            per_machine,
        })
    })();

    let result = result.and_then(|summary| {
        // a recovered run already killed and reaped its workers
        if !summary.machines_recovered.is_empty() {
            return Ok(summary);
        }
        // reap the workers (they received the shutdown order)
        let reap_deadline = Instant::now() + Duration::from_secs(10);
        for (machine, child) in children.lock().expect("children lock").iter_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => break,
                    Ok(Some(status)) => {
                        return Err(format!("worker machine {machine} exited with {status}"))
                    }
                    Ok(None) if Instant::now() >= reap_deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(format!("worker machine {machine} ignored shutdown"));
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(e) => return Err(format!("waiting for worker {machine}: {e}")),
                }
            }
        }
        Ok(summary)
    });
    if result.is_err() {
        kill_children(&mut children.lock().expect("children lock"));
    }
    // scratch socket files live under a per-run directory
    if let Some(PeerAddr::Uds(path)) = addrs.first() {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    result
}

/// The `sockets` experiment: the same queries on the same dataset stand-in
/// over (a) the in-process channel transport with its *simulated* byte
/// model and (b) a real multi-process UDS cluster (this process as
/// coordinator + `machines - 1` spawned `rads-node` workers) counting
/// *real framed bytes*. Panics if the two transports disagree on any
/// embedding count — the ground-truth gate of the socket runtime — and
/// returns a `RADS-sim` / `RADS-uds` record pair per query whose
/// `bytes_shipped` columns compare the cost model against the wire.
pub fn socket_vs_simulated(
    kind: DatasetKind,
    scale: Scale,
    machines: usize,
    seed: u64,
    query_names: &[&str],
    node_binary: &Path,
    timeout: Duration,
) -> Result<Vec<crate::BenchRecord>, String> {
    use rads_core::{run_rads, RadsConfig};

    let dataset = generate(kind, scale, seed);
    // the baseline leg is pinned to the channel simulator: its whole point
    // is recording the *modelled* bytes, which RADS_TRANSPORT=uds would
    // silently turn into a second wire measurement
    let partitioning =
        LabelPropagationPartitioner::default().partition(&dataset.graph, machines);
    let cluster = rads_runtime::Cluster::with_transport(
        Arc::new(PartitionedGraph::build(&dataset.graph, partitioning)),
        TransportKind::InProcess,
    );
    let mut records = Vec::new();
    for &qname in query_names {
        let pattern = queries::query_by_name(qname).ok_or(format!("unknown query {qname:?}"))?;
        let config = RadsConfig::default();
        let workers = config.workers;
        let sim_start = Instant::now();
        let sim = run_rads(&cluster, &pattern, &config);
        let sim_ms = sim_start.elapsed().as_secs_f64() * 1000.0;

        let spec = ClusterSpec {
            machines,
            dataset: kind,
            scale: scale.0,
            seed,
            query: qname.to_string(),
            workers,
            budget: None,
            driver: config.round_driver,
            fetch_chunk: None,
            cache: true,
            trace_out: None,
            metrics_out: None,
            fault_policy: FaultPolicy::default(),
            chaos_kill_ms: None,
        };
        let summary = run_coordinator(&spec, TransportKind::Uds, node_binary, timeout)?;
        assert_eq!(
            summary.total_embeddings, sim.total_embeddings,
            "{qname}: the real-socket cluster deviates from the in-process transport"
        );
        // comparable to the sim row's run_rads wall clock: the slowest
        // machine's *engine* time — the coordinator's own elapsed_ms also
        // counts process spawning and N independent dataset generations
        let uds_ms = summary
            .per_machine
            .iter()
            .map(|m| m.elapsed_ms)
            .fold(0.0f64, f64::max);
        for (system, bytes, ms) in [
            ("RADS-sim", sim.traffic.total_bytes, sim_ms),
            ("RADS-uds", summary.wire_bytes, uds_ms),
        ] {
            records.push(crate::BenchRecord {
                experiment: "sockets".to_string(),
                dataset: dataset.profile.name.clone(),
                query: qname.to_string(),
                system: system.to_string(),
                machines,
                workers,
                embeddings: sim.total_embeddings,
                elapsed_ms: ms,
                embeddings_per_sec: crate::embeddings_per_sec(sim.total_embeddings, ms),
                bytes_shipped: bytes,
                peak_tracked_bytes: 0,
                budget_bytes: 0,
            });
        }
    }
    Ok(records)
}

/// `fetchV` chunk of the `overlap` experiment's UDS leg. A same-host
/// socket's round trip is two to three orders of magnitude below a real
/// network's, so at the production chunk size
/// ([`rads_core::engine::DEFAULT_FETCH_CHUNK_VERTICES`]) a round's handful
/// of frames costs microseconds and any driver difference drowns in
/// scheduling noise. Shrinking the chunk makes each round span as many
/// round trips as it would when adjacency volume, frame caps or MTU-sized
/// chunks force it to on a real wire — which is exactly the request
/// sequence whose latency the async driver exists to overlap. Both drivers
/// run with the same chunk, so the comparison stays apples to apples.
pub const OVERLAP_FETCH_CHUNK: usize = 16;

/// The round drivers the `overlap` experiment compares, in record order.
const OVERLAP_DRIVERS: [RoundDriver; 2] = [RoundDriver::Serial, RoundDriver::Async];

/// Floor on the per-driver rep count of [`overlap_sockets`]. Scheduling
/// noise on a single-host cluster is one-sided — contention only ever
/// *adds* time — so the minimum over reps converges to each driver's true
/// floor, and because the floors sit only a few percent apart when the
/// whole cluster time-slices one box, a handful of samples is not enough
/// for the minima to separate reliably. The runs are sub-second, so the
/// extra reps are cheap.
pub const OVERLAP_UDS_MIN_REPS: u32 = 9;

/// The `overlap` experiment's real-socket leg: each `(query, scale)` pair
/// on a real `machines`-process UDS cluster (this process as coordinator
/// plus spawned `rads-node` workers), once per round driver, with
/// message-rich rounds ([`OVERLAP_FETCH_CHUNK`]). No artificial latency is
/// injected — the async driver's edge here comes from keeping every peer
/// daemon busy at once instead of serving one fetchV chunk per round trip.
/// Each driver runs `reps` times (at least [`OVERLAP_UDS_MIN_REPS`]) — the
/// drivers *interleaved* rep by rep, so a drift in the host's available
/// CPU (this is a whole cluster time-slicing one box) hits both drivers
/// alike instead of whichever ran its block second — and the fastest
/// slowest-machine engine time is recorded (the coordinator's own wall
/// clock also counts process spawning and `machines` independent dataset
/// generations, which neither driver influences). Panics if the drivers
/// disagree on any embedding count.
///
/// Returns a `RADS-uds-serial` / `RADS-uds-async` record pair per query.
pub fn overlap_sockets(
    kind: DatasetKind,
    machines: usize,
    seed: u64,
    queries: &[(&str, Scale)],
    node_binary: &Path,
    timeout: Duration,
    reps: u32,
) -> Result<Vec<crate::BenchRecord>, String> {
    let workers = rads_core::RadsConfig::default().workers;
    let reps = reps.max(OVERLAP_UDS_MIN_REPS);
    let mut records = Vec::new();
    for &(qname, scale) in queries {
        let mut best: [Option<(f64, ClusterSummary)>; 2] = [None, None];
        for _ in 0..reps {
            for (slot, driver) in OVERLAP_DRIVERS.into_iter().enumerate() {
                let spec = ClusterSpec {
                    machines,
                    dataset: kind,
                    scale: scale.0,
                    seed,
                    query: qname.to_string(),
                    workers,
                    budget: None,
                    driver,
                    fetch_chunk: Some(OVERLAP_FETCH_CHUNK),
                    cache: true,
                    trace_out: None,
                    metrics_out: None,
                    fault_policy: FaultPolicy::default(),
                    chaos_kill_ms: None,
                };
                let summary = run_coordinator(&spec, TransportKind::Uds, node_binary, timeout)?;
                let ms = summary
                    .per_machine
                    .iter()
                    .map(|m| m.elapsed_ms)
                    .fold(0.0f64, f64::max);
                if best[slot].as_ref().is_none_or(|(b, _)| ms < *b) {
                    best[slot] = Some((ms, summary));
                }
            }
        }
        let mut expected = None;
        for (slot, driver) in OVERLAP_DRIVERS.into_iter().enumerate() {
            let (ms, summary) = best[slot].take().expect("reps >= 1");
            match expected {
                None => expected = Some(summary.total_embeddings),
                Some(e) => assert_eq!(
                    e, summary.total_embeddings,
                    "{qname}: the async driver changed the count on the UDS cluster"
                ),
            }
            records.push(crate::BenchRecord {
                experiment: "overlap".to_string(),
                dataset: summary.dataset.clone(),
                query: qname.to_string(),
                system: match driver {
                    RoundDriver::Serial => "RADS-uds-serial".to_string(),
                    RoundDriver::Async => "RADS-uds-async".to_string(),
                },
                machines,
                workers,
                embeddings: summary.total_embeddings,
                elapsed_ms: ms,
                embeddings_per_sec: crate::embeddings_per_sec(summary.total_embeddings, ms),
                bytes_shipped: summary.wire_bytes,
                peak_tracked_bytes: 0,
                budget_bytes: 0,
            });
        }
    }
    Ok(records)
}

/// The `rads-node` binary next to another binary of the same build (the
/// `experiments` CLI and the integration tests use this to find it).
pub fn sibling_node_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("current_exe has no parent dir")?;
    // integration-test binaries live one level deeper (target/debug/deps)
    for candidate_dir in [dir, dir.parent().unwrap_or(dir)] {
        let candidate = candidate_dir.join(format!("rads-node{}", std::env::consts::EXE_SUFFIX));
        if candidate.exists() {
            return Ok(candidate);
        }
    }
    Err(format!(
        "rads-node binary not found next to {} — build it first (cargo build --bin rads-node)",
        exe.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_payload_round_trips() {
        let summary = MachineSummary {
            machine: 3,
            embeddings: 12345,
            sme_embeddings: 77,
            wire_bytes: 987654321,
            wire_messages: 4321,
            fetch_wait_demand_us: 640,
            fetch_wait_prefetch_us: 12,
            elapsed_ms: 15.625,
            rpc_retries: 7,
            reconnects: 2,
        };
        let encoded = encode_result(&summary);
        assert_eq!(encoded.len(), RESULT_PAYLOAD_BYTES);
        assert_eq!(decode_result(&encoded), Ok(summary));
        assert!(decode_result(&[1, 2, 3]).is_err());
    }

    #[test]
    fn cluster_summary_json_round_trips() {
        let summary = ClusterSummary {
            query: "q5".into(),
            dataset: "LiveJournal".into(),
            transport: "uds".into(),
            machines: 4,
            workers: 2,
            total_embeddings: 99,
            wire_bytes: 1234,
            wire_messages: 56,
            elapsed_ms: 78.5,
            metrics: vec![
                ("rads_net_bytes_total".to_string(), 1234),
                ("rads_net_frame_bytes_count".to_string(), 56),
                ("rads_net_frame_bytes_sum".to_string(), 1100),
            ],
            fault_policy: "recover".to_string(),
            rpc_retries: 9,
            reconnects: 3,
            heartbeats_missed: 4,
            machines_recovered: vec![3],
            groups_recovered: 17,
            per_machine: vec![
                MachineSummary {
                    machine: 0,
                    embeddings: 40,
                    sme_embeddings: 11,
                    wire_bytes: 600,
                    wire_messages: 30,
                    fetch_wait_demand_us: 523,
                    fetch_wait_prefetch_us: 0,
                    elapsed_ms: 70.125,
                    rpc_retries: 6,
                    reconnects: 1,
                },
                MachineSummary {
                    machine: 1,
                    embeddings: 59,
                    sme_embeddings: 0,
                    wire_bytes: 634,
                    wire_messages: 26,
                    fetch_wait_demand_us: 77,
                    fetch_wait_prefetch_us: 3,
                    elapsed_ms: 69.0,
                    rpc_retries: 3,
                    reconnects: 2,
                },
            ],
        };
        let rendered = format!("spawned 3 workers\n{}\n", summary.to_json());
        assert_eq!(ClusterSummary::parse_json(&rendered), Ok(summary));
    }

    #[test]
    fn fault_policy_env_values_parse_or_error() {
        assert_eq!(FaultPolicy::from_env_value(None), Ok(FaultPolicy::FailFast));
        assert_eq!(FaultPolicy::from_env_value(Some("fail-fast")), Ok(FaultPolicy::FailFast));
        assert_eq!(FaultPolicy::from_env_value(Some("Recover")), Ok(FaultPolicy::Recover));
        let err = FaultPolicy::from_env_value(Some("retry-forever")).expect_err("typed error");
        assert_eq!(err.var, FAULT_POLICY_ENV);
        assert!(err.to_string().contains("retry-forever"), "{err}");
    }

    #[test]
    fn fault_report_names_every_dead_machine() {
        let spec = ClusterSpec {
            machines: 4,
            dataset: DatasetKind::Dblp,
            scale: 0.05,
            seed: 9,
            query: "q2".into(),
            workers: 1,
            budget: None,
            driver: RoundDriver::Async,
            fetch_chunk: None,
            cache: true,
            trace_out: None,
            metrics_out: None,
            fault_policy: FaultPolicy::FailFast,
            chaos_kill_ms: None,
        };
        let report =
            fault_report(&spec, &[(2, "signal: 9".to_string()), (3, "exit status: 1".to_string())]);
        assert!(report.contains("\"policy\":\"fail-fast\""), "{report}");
        assert!(report.contains("{\"machine\":2,\"status\":\"signal: 9\"}"), "{report}");
        assert!(report.contains("{\"machine\":3,\"status\":\"exit status: 1\"}"), "{report}");
        // the report is itself parseable JSON
        let parsed = Json::parse(&report).expect("report parses");
        assert_eq!(parsed.get("fault").and_then(Json::as_str), Some("worker-loss"));
    }

    #[test]
    fn dataset_names_resolve_case_insensitively() {
        assert_eq!(dataset_by_name("livejournal"), Some(DatasetKind::LiveJournal));
        assert_eq!(dataset_by_name("DBLP"), Some(DatasetKind::Dblp));
        assert_eq!(dataset_by_name("RoadNet"), Some(DatasetKind::RoadNet));
        assert_eq!(dataset_by_name("uk2002"), Some(DatasetKind::Uk2002));
        assert_eq!(dataset_by_name("atlantis"), None);
    }

    #[test]
    fn worker_args_carry_the_whole_spec() {
        let spec = ClusterSpec {
            machines: 3,
            dataset: DatasetKind::Dblp,
            scale: 0.05,
            seed: 9,
            query: "q2".into(),
            workers: 2,
            budget: Some(65536),
            driver: RoundDriver::Async,
            fetch_chunk: Some(512),
            cache: false,
            trace_out: Some(PathBuf::from("/tmp/a/trace.json")),
            metrics_out: Some(PathBuf::from("/tmp/a/metrics.json")),
            fault_policy: FaultPolicy::default(),
            chaos_kill_ms: None,
        };
        let addrs = vec![
            PeerAddr::Uds("/tmp/a/m0.sock".into()),
            PeerAddr::Uds("/tmp/a/m1.sock".into()),
            PeerAddr::Uds("/tmp/a/m2.sock".into()),
        ];
        let args = worker_args(&spec, 2, &addrs, Duration::from_secs(60));
        let joined = args.join(" ");
        assert!(joined.starts_with("worker --machine 2 --machines 3"));
        assert!(joined.contains("--addrs uds:/tmp/a/m0.sock,uds:/tmp/a/m1.sock,uds:/tmp/a/m2.sock"));
        assert!(joined.contains("--dataset DBLP"));
        assert!(joined.contains("--scale 0.05"));
        assert!(joined.contains("--query q2"));
        assert!(joined.contains("--workers 2"));
        assert!(joined.contains("--driver async"));
        assert!(joined.contains("--budget 65536"));
        assert!(joined.contains("--fetch-chunk 512"));
        assert!(joined.contains("--no-cache"));
        assert!(joined.contains("--timeout-secs 60"));
        assert!(joined.contains("--trace-out /tmp/a/trace.json.m2"));
        assert!(joined.contains("--metrics-out /tmp/a/metrics.json.m2"));
    }

    #[test]
    fn artifact_paths_derive_per_machine() {
        let base = Path::new("/tmp/run/trace.json");
        assert_eq!(machine_artifact(base, 0), base);
        assert_eq!(machine_artifact(base, 3), PathBuf::from("/tmp/run/trace.json.m3"));
        assert_eq!(
            prometheus_sibling(Path::new("/tmp/run/metrics.json")),
            PathBuf::from("/tmp/run/metrics.json.prom")
        );
    }

    #[test]
    fn address_allocation_matches_the_transport() {
        let uds = allocate_addrs(TransportKind::Uds, 3).unwrap();
        assert_eq!(uds.len(), 3);
        if cfg!(unix) {
            assert!(matches!(&uds[0], PeerAddr::Uds(_)));
            // all three live in the same scratch dir
            let dirs: std::collections::HashSet<_> = uds
                .iter()
                .map(|a| match a {
                    PeerAddr::Uds(p) => p.parent().unwrap().to_path_buf(),
                    PeerAddr::Tcp(_) => unreachable!(),
                })
                .collect();
            assert_eq!(dirs.len(), 1);
            let _ = std::fs::remove_dir_all(dirs.into_iter().next().unwrap());
        }
        let tcp = allocate_addrs(TransportKind::Tcp, 2).unwrap();
        assert!(matches!(&tcp[0], PeerAddr::Tcp(_)));
        assert_ne!(tcp[0], tcp[1]);
        assert!(allocate_addrs(TransportKind::InProcess, 2).is_err());
    }
}
