//! A minimal JSON reader.
//!
//! The harness *writes* `BENCH_results.json` with hand-rolled formatting
//! (see [`crate::render_results_json`]); this module is the matching
//! *reader*, used by the `experiments validate` schema gate and by the
//! multi-process coordinator protocol (`rads-node --json` output). It is a
//! strict recursive-descent parser over the JSON subset those producers
//! emit — objects, arrays, strings with the common escapes, numbers, bools,
//! null — and rejects everything else with a byte-offset error message.
//! The offline-build constraint (no serde_json) is why it exists at all.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like serde_json's default).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as exactly one JSON value (trailing non-whitespace is
    /// an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_whitespace();
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members if this is an object, in source order.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The member named `key` if this is an object (last wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("unterminated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("unknown escape {:?} at byte {}", other as char, self.pos))
                        }
                    }
                }
                Some(_) => {
                    // advance over one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are sound)
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Number(42.0)));
        assert_eq!(Json::parse("-1.5e2"), Ok(Json::Number(-150.0)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::String("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(a[2], Json::Null);
    }

    #[test]
    fn resolves_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndA""#),
            Ok(Json::String("a\"b\\c\ndA".into()))
        );
    }

    #[test]
    fn round_trips_the_bench_record_writer() {
        let m = crate::Measurement {
            system: "RADS",
            dataset: "DBLP".into(),
            query: "q1".into(),
            machines: 4,
            embeddings: 123,
            elapsed_ms: 1.5,
            communication_mb: 0.25,
            peak_intermediate_rows: 7,
            workers: 2,
        };
        let records = vec![crate::BenchRecord::from_measurement("fig9", &m)];
        let parsed = Json::parse(&crate::render_results_json(&records)).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("experiment").and_then(Json::as_str), Some("fig9"));
        assert_eq!(rows[0].get("embeddings").and_then(Json::as_u64), Some(123));
        assert_eq!(rows[0].get("elapsed_ms").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integral_checks_are_strict() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
    }
}
