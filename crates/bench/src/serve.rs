//! Serving mode (`rads-node serve`): a resident query-serving cluster.
//!
//! The one-shot modes in [`crate::procs`] pay the dominant cost of a run —
//! generating and partitioning the dataset in every process — once *per
//! query*. Serving mode pays it once per *process lifetime*: every machine
//! loads its partition, starts its [`SocketNode`] and then stays resident,
//! answering a stream of pattern queries over the same socket fabric.
//!
//! # Architecture
//!
//! * The **serve coordinator** (machine 0) opens two extra doors next to
//!   its inter-machine listener: a TCP **client front door** speaking
//!   [`FrameKind::Query`] / [`FrameKind::QueryResult`] frames (payloads
//!   defined here, see [`ClientOp`] / [`QueryReply`]), and a Prometheus
//!   text page ([`MetricsHttpServer`]) continuously serving the process
//!   registry.
//! * **Serve workers** run a job loop instead of a single engine run: the
//!   coordinator dispatches each admitted query as a
//!   [`Request::Query`] RPC (acknowledged immediately, executed from a
//!   queue), every machine runs the unmodified
//!   [`rads_core::engine::run_machine`], and each worker delivers a
//!   per-query report as a result frame.
//! * Client connections are handled concurrently, but execution is
//!   **serialized in submission order**: the accept/handler threads feed
//!   one job channel the coordinator's main thread drains, so the channel
//!   itself is the FIFO admission queue ("queue" of queue-or-reject).
//!
//! # Admission control
//!
//! Before dispatching, the coordinator estimates the query's memory
//! footprint ([`rads_core::estimate_query_footprint`] — deliberately
//! conservative) and rejects it with a structured
//! [`QueryReply::Rejected`] when the estimate exceeds the configured
//! admission limit. An admitted query is still governed at runtime by the
//! per-machine memory governor, so admission is a cheap front gate, not
//! the enforcement mechanism.
//!
//! # State the queries share — and the reuse contract
//!
//! A resident cluster must not bleed state between queries. Per query,
//! every machine constructs a fresh region-group queue and
//! [`RadsDaemon`] (installed into its [`ServeDaemon`] for the duration of
//! the run); engine stats, the embedding trie and the foreign-vertex
//! cache live inside `run_machine` and die with it. What intentionally
//! persists: the partitioned graph, the plan cache ([`PlanCache`] — keyed
//! by canonical pattern signature, hits observable as
//! `rads_plan_cache_hits_total`), and the process-global metrics registry,
//! which stays *cumulative* (that is what the Prometheus page serves);
//! per-query metrics in the reply are computed as
//! [`MetricsSnapshot::delta_since`] deltas against the previous query's
//! cluster-wide snapshot.
//!
//! The engine's memory budget is resolved **once at startup** (explicit
//! `--budget` flag or one read of `RADS_MEMORY_BUDGET`); a per-query
//! client override applies to that query only. The environment is never
//! re-read while serving.

use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use rads_core::daemon::{new_group_queue, GroupQueue, RadsDaemon};
use rads_core::engine::run_machine;
use rads_core::memory::MemoryBudget;
use rads_core::{estimate_query_footprint, PlanCache};
use rads_graph::queries;
use rads_obs::{MetricsHttpServer, MetricsSnapshot, Registry};
use rads_partition::{MachineId, PartitionedGraph};
use rads_runtime::wire::{read_message, write_message, FrameKind};
use rads_runtime::{
    Daemon, MachineContext, NetworkStats, PartitionDaemon, PeerAddr, Request, Response,
    SocketListener, SocketNode, TrafficSnapshot, TransportKind,
};

use crate::procs::{
    allocate_addrs, build_partitioned, decode_result, encode_result, engine_config_with,
    machine_summary, worker_args, ClusterSpec, MachineSummary, RESULT_PAYLOAD_BYTES,
};

/// The planner exponent every serve machine pins, matching the one-shot
/// modes (`best_plan(&pattern, &PlannerConfig { rho: 1.0 })`): equal
/// inputs are what keep the per-machine plan caches agreeing without
/// coordination.
const SERVE_RHO: f64 = 1.0;

/// How long a serve worker's job loop waits on each of its two wake-up
/// sources (the shutdown flag and the job channel) before checking the
/// other.
const JOB_POLL: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------------
// client protocol (payloads of FrameKind::Query / FrameKind::QueryResult)
// ---------------------------------------------------------------------------

const OP_QUERY: u8 = 0;
const OP_SHUTDOWN: u8 = 1;

const REPLY_OK: u8 = 0;
const REPLY_REJECTED: u8 = 1;
const REPLY_ERROR: u8 = 2;
const REPLY_SHUTDOWN_ACK: u8 = 3;

/// What a client asks the serve coordinator to do (the payload of a
/// [`FrameKind::Query`] frame; the frame's correlation id is echoed in the
/// reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Run `pattern` (a [`rads_graph::queries::query_by_name`] name) on
    /// the resident cluster, optionally overriding the per-group memory
    /// budget (bytes) for this query only.
    Query {
        /// Pattern name.
        pattern: String,
        /// Per-query budget override in bytes.
        budget: Option<u64>,
    },
    /// Shut the whole serve cluster down after replying.
    Shutdown,
}

/// Encodes a [`ClientOp`] as a `Query` frame payload.
pub fn encode_client_op(op: &ClientOp) -> Vec<u8> {
    let mut buf = Vec::new();
    match op {
        ClientOp::Query { pattern, budget } => {
            buf.push(OP_QUERY);
            buf.extend_from_slice(&(pattern.len() as u16).to_le_bytes());
            buf.extend_from_slice(pattern.as_bytes());
            match budget {
                Some(bytes) => {
                    buf.push(1);
                    buf.extend_from_slice(&bytes.to_le_bytes());
                }
                None => buf.push(0),
            }
        }
        ClientOp::Shutdown => buf.push(OP_SHUTDOWN),
    }
    buf
}

/// Decodes a `Query` frame payload.
pub fn decode_client_op(buf: &[u8]) -> Result<ClientOp, String> {
    let op = *buf.first().ok_or("empty client frame")?;
    match op {
        OP_SHUTDOWN => Ok(ClientOp::Shutdown),
        OP_QUERY => {
            let len = u16::from_le_bytes(
                buf.get(1..3).ok_or("truncated pattern length")?.try_into().expect("2 bytes"),
            ) as usize;
            let pattern = std::str::from_utf8(
                buf.get(3..3 + len).ok_or("truncated pattern name")?,
            )
            .map_err(|_| "pattern name is not UTF-8".to_string())?
            .to_string();
            let mut at = 3 + len;
            let flag = *buf.get(at).ok_or("truncated budget flag")?;
            at += 1;
            let budget = match flag {
                0 => None,
                1 => Some(u64::from_le_bytes(
                    buf.get(at..at + 8).ok_or("truncated budget")?.try_into().expect("8 bytes"),
                )),
                other => return Err(format!("bad budget flag {other}")),
            };
            Ok(ClientOp::Query { pattern, budget })
        }
        other => Err(format!("unknown client op {other}")),
    }
}

/// The serve coordinator's answer to one [`ClientOp`] (the payload of the
/// [`FrameKind::QueryResult`] frame echoing the request's correlation id).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query ran to completion on every machine.
    Ok {
        /// Embeddings over all machines — bit-identical to a one-shot run
        /// of the same query on the same spec.
        count: u64,
        /// Coordinator-measured wall clock, dispatch to all-reports, µs.
        elapsed_us: u64,
        /// Whether the coordinator served the plan from its cache.
        plan_cache_hit: bool,
        /// Per-machine embedding counts, machine 0 first.
        per_machine: Vec<(u32, u64)>,
        /// This query's *delta* of the cluster-wide metrics registry
        /// (JSON, [`MetricsSnapshot::to_json`] shape) — free of
        /// cross-query bleed by construction.
        metrics_json: String,
    },
    /// Admission control refused the query: its estimated footprint
    /// exceeds the admission limit. Nothing was dispatched.
    Rejected {
        /// Estimated bytes ([`estimate_query_footprint`]).
        estimate: u64,
        /// The configured admission limit in bytes.
        limit: u64,
    },
    /// The query failed (unknown pattern, lost worker, timeout).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges [`ClientOp::Shutdown`]; the cluster exits after this.
    ShutdownAck,
}

/// Encodes a [`QueryReply`] as a `QueryResult` frame payload.
pub fn encode_query_reply(reply: &QueryReply) -> Vec<u8> {
    let mut buf = Vec::new();
    match reply {
        QueryReply::Ok { count, elapsed_us, plan_cache_hit, per_machine, metrics_json } => {
            buf.push(REPLY_OK);
            buf.extend_from_slice(&count.to_le_bytes());
            buf.extend_from_slice(&elapsed_us.to_le_bytes());
            buf.push(u8::from(*plan_cache_hit));
            buf.extend_from_slice(&(per_machine.len() as u32).to_le_bytes());
            for (machine, embeddings) in per_machine {
                buf.extend_from_slice(&machine.to_le_bytes());
                buf.extend_from_slice(&embeddings.to_le_bytes());
            }
            buf.extend_from_slice(&(metrics_json.len() as u32).to_le_bytes());
            buf.extend_from_slice(metrics_json.as_bytes());
        }
        QueryReply::Rejected { estimate, limit } => {
            buf.push(REPLY_REJECTED);
            buf.extend_from_slice(&estimate.to_le_bytes());
            buf.extend_from_slice(&limit.to_le_bytes());
        }
        QueryReply::Error { message } => {
            buf.push(REPLY_ERROR);
            buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
            buf.extend_from_slice(message.as_bytes());
        }
        QueryReply::ShutdownAck => buf.push(REPLY_SHUTDOWN_ACK),
    }
    buf
}

/// Decodes a `QueryResult` frame payload.
pub fn decode_query_reply(buf: &[u8]) -> Result<QueryReply, String> {
    let status = *buf.first().ok_or("empty reply frame")?;
    let u64_at = |at: usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            buf.get(at..at + 8).ok_or("truncated u64")?.try_into().expect("8 bytes"),
        ))
    };
    match status {
        REPLY_SHUTDOWN_ACK => Ok(QueryReply::ShutdownAck),
        REPLY_REJECTED => {
            Ok(QueryReply::Rejected { estimate: u64_at(1)?, limit: u64_at(9)? })
        }
        REPLY_ERROR => {
            let len = u32::from_le_bytes(
                buf.get(1..5).ok_or("truncated message length")?.try_into().expect("4 bytes"),
            ) as usize;
            let message = std::str::from_utf8(buf.get(5..5 + len).ok_or("truncated message")?)
                .map_err(|_| "error message is not UTF-8".to_string())?
                .to_string();
            Ok(QueryReply::Error { message })
        }
        REPLY_OK => {
            let count = u64_at(1)?;
            let elapsed_us = u64_at(9)?;
            let plan_cache_hit = match buf.get(17) {
                Some(0) => false,
                Some(1) => true,
                _ => return Err("bad plan-cache flag".to_string()),
            };
            let machines = u32::from_le_bytes(
                buf.get(18..22).ok_or("truncated machine count")?.try_into().expect("4 bytes"),
            ) as usize;
            let mut at = 22;
            let mut per_machine = Vec::with_capacity(machines);
            for _ in 0..machines {
                let machine = u32::from_le_bytes(
                    buf.get(at..at + 4).ok_or("truncated machine id")?.try_into().expect("4 bytes"),
                );
                per_machine.push((machine, u64_at(at + 4)?));
                at += 12;
            }
            let len = u32::from_le_bytes(
                buf.get(at..at + 4).ok_or("truncated metrics length")?.try_into().expect("4 bytes"),
            ) as usize;
            at += 4;
            let metrics_json =
                std::str::from_utf8(buf.get(at..at + len).ok_or("truncated metrics json")?)
                    .map_err(|_| "metrics json is not UTF-8".to_string())?
                    .to_string();
            Ok(QueryReply::Ok { count, elapsed_us, plan_cache_hit, per_machine, metrics_json })
        }
        other => Err(format!("unknown reply status {other}")),
    }
}

// ---------------------------------------------------------------------------
// per-query worker report (worker → coordinator result frame)
// ---------------------------------------------------------------------------

/// `[query id u64][plan-cache hit u8][the one-shot 76-byte MachineSummary]`.
const QUERY_REPORT_BYTES: usize = 8 + 1 + RESULT_PAYLOAD_BYTES;

fn encode_query_report(id: u64, summary: &MachineSummary, hit: bool) -> Vec<u8> {
    let mut buf = Vec::with_capacity(QUERY_REPORT_BYTES);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(u8::from(hit));
    buf.extend_from_slice(&encode_result(summary));
    buf
}

fn decode_query_report(buf: &[u8]) -> Result<(u64, MachineSummary, bool), String> {
    if buf.len() != QUERY_REPORT_BYTES {
        return Err(format!("query report of {} bytes, expected {QUERY_REPORT_BYTES}", buf.len()));
    }
    let id = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    let hit = buf[8] != 0;
    Ok((id, decode_result(&buf[9..])?, hit))
}

// ---------------------------------------------------------------------------
// the serve daemon
// ---------------------------------------------------------------------------

/// One queued query on a serve machine.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueryJob {
    id: u64,
    pattern: String,
    budget: Option<u64>,
}

/// The daemon of a resident serve machine.
///
/// `verifyE` / `fetchV` are answered from the partition at all times (a
/// peer may fetch while this machine is between queries). `checkR` /
/// `shareR` route to the **current query's** [`RadsDaemon`] — installed
/// just before `run_machine` and cleared right after — and report an empty
/// queue when no query is active, which a stealing peer treats as "nothing
/// to take". [`Request::Query`] is acknowledged immediately and enqueued
/// for the machine's job loop (workers only; on the coordinator, queries
/// arrive through the client front door, never as fabric RPCs).
pub struct ServeDaemon {
    base: PartitionDaemon,
    current: StdMutex<Option<Arc<RadsDaemon>>>,
    jobs: Option<StdMutex<mpsc::Sender<QueryJob>>>,
}

impl ServeDaemon {
    /// A serve daemon with no job queue (the coordinator's).
    pub fn new(partitioned: Arc<PartitionedGraph>, machine: MachineId) -> ServeDaemon {
        ServeDaemon {
            base: PartitionDaemon::new(partitioned, machine),
            current: StdMutex::new(None),
            jobs: None,
        }
    }

    fn with_job_queue(
        partitioned: Arc<PartitionedGraph>,
        machine: MachineId,
        jobs: mpsc::Sender<QueryJob>,
    ) -> ServeDaemon {
        ServeDaemon {
            base: PartitionDaemon::new(partitioned, machine),
            current: StdMutex::new(None),
            jobs: Some(StdMutex::new(jobs)),
        }
    }

    /// Installs the active query's daemon (fresh group queue and all).
    pub fn install(&self, daemon: Arc<RadsDaemon>) {
        *self.current.lock().unwrap_or_else(|p| p.into_inner()) = Some(daemon);
    }

    /// Clears the active query's daemon once its engine run finished.
    pub fn clear(&self) {
        *self.current.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

impl Daemon for ServeDaemon {
    fn handle(&self, from: MachineId, request: Request) -> Response {
        match request {
            Request::Query { id, pattern, budget } => match &self.jobs {
                Some(tx) => {
                    let sent = tx
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .send(QueryJob { id, pattern, budget })
                        .is_ok();
                    if sent {
                        Response::Ack
                    } else {
                        Response::Unsupported
                    }
                }
                None => Response::Unsupported,
            },
            Request::CheckRegionGroups | Request::ShareRegionGroup => {
                let current =
                    self.current.lock().unwrap_or_else(|p| p.into_inner()).clone();
                match current {
                    Some(daemon) => daemon.handle(from, request),
                    // between queries: an empty queue, not an error — a
                    // stealing peer that races the job hand-off simply
                    // finds nothing to take
                    None => match request {
                        Request::CheckRegionGroups => Response::RegionGroupCount(0),
                        _ => Response::RegionGroup(None),
                    },
                }
            }
            other => self.base.handle(from, other),
        }
    }
}

// ---------------------------------------------------------------------------
// shared per-process serve state
// ---------------------------------------------------------------------------

/// Resolves the memory budget a serve process uses for every query without
/// a client override. Called exactly once per process, at startup — the
/// construction-time snapshot that stops `RADS_MEMORY_BUDGET` flips from
/// changing a resident cluster's behaviour mid-stream.
fn startup_budget(spec: &ClusterSpec) -> MemoryBudget {
    match spec.budget {
        Some(bytes) => MemoryBudget::from_bytes(bytes),
        None => MemoryBudget::default_from_env(),
    }
}

fn per_query_budget(base: &MemoryBudget, override_bytes: Option<u64>) -> MemoryBudget {
    match override_bytes {
        Some(bytes) => MemoryBudget::from_bytes(bytes as usize),
        None => *base,
    }
}

fn traffic_delta(now: &TrafficSnapshot, prev: &TrafficSnapshot) -> TrafficSnapshot {
    let mut delta = now.clone();
    delta.messages = now.messages.saturating_sub(prev.messages);
    delta.total_bytes = now.total_bytes.saturating_sub(prev.total_bytes);
    delta.control_bytes = now.control_bytes.saturating_sub(prev.control_bytes);
    for (m, bytes) in delta.per_machine_bytes.iter_mut().enumerate() {
        *bytes = bytes.saturating_sub(prev.per_machine_bytes.get(m).copied().unwrap_or(0));
    }
    delta
}

/// Builds the per-query engine config from the startup snapshot + the
/// query's name and budget. Never consults the environment.
fn query_engine_config(
    spec: &ClusterSpec,
    pattern_name: &str,
    base_budget: &MemoryBudget,
    budget_override: Option<u64>,
) -> rads_core::engine::EngineConfig {
    let mut spec = spec.clone();
    spec.query = pattern_name.to_string();
    engine_config_with(&spec, per_query_budget(base_budget, budget_override))
}

// ---------------------------------------------------------------------------
// serve worker
// ---------------------------------------------------------------------------

/// Runs one resident serve worker: build the partition once, then loop —
/// pick a queued [`Request::Query`] job, run the engine, deliver the
/// per-query report — until the coordinator's shutdown order.
pub fn run_serve_worker(
    spec: &ClusterSpec,
    machine: usize,
    addrs: Vec<PeerAddr>,
) -> Result<(), String> {
    if machine == 0 || machine >= spec.machines {
        return Err(format!("serve worker id {machine} out of range 1..{}", spec.machines));
    }
    // the Prometheus page and plan-cache counters are part of the serving
    // contract, so serve processes always record
    rads_obs::set_metrics_enabled(true);
    rads_obs::set_trace_process(machine as u64);
    let listener = SocketListener::bind(&addrs[machine])
        .map_err(|e| format!("machine {machine}: cannot bind {}: {e}", addrs[machine]))?;
    let partitioned = build_partitioned(spec);
    let stats = Arc::new(NetworkStats::new(spec.machines));
    let (job_tx, job_rx) = mpsc::channel();
    let daemon: Arc<ServeDaemon> =
        Arc::new(ServeDaemon::with_job_queue(partitioned.clone(), machine, job_tx));
    let node = SocketNode::start_with_listener(
        machine,
        addrs,
        listener,
        daemon.clone(),
        stats.clone(),
    );
    let ctx = MachineContext::assemble(partitioned.clone(), node.transport(), daemon.clone());
    let plan_cache = PlanCache::new();
    let base_budget = startup_budget(spec);
    let mut prev_wire = stats.snapshot();
    loop {
        if node.wait_shutdown(JOB_POLL) {
            break;
        }
        let job = match job_rx.recv_timeout(JOB_POLL) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let Some(pattern) = queries::query_by_name(&job.pattern) else {
            // the coordinator validates names before dispatching; reaching
            // this means a version skew between binaries — report loudly
            // and let the coordinator's per-query deadline surface it
            eprintln!("machine {machine}: unknown query {:?}", job.pattern);
            continue;
        };
        let (plan, hit) = plan_cache.get_or_compute(&pattern, SERVE_RHO);
        let config = query_engine_config(spec, &job.pattern, &base_budget, job.budget);
        let queue: GroupQueue = new_group_queue();
        daemon.install(Arc::new(RadsDaemon::new(partitioned.clone(), machine, queue.clone())));
        let start = Instant::now();
        let output = run_machine(&ctx, &pattern, &plan, &config, queue);
        let elapsed = start.elapsed();
        daemon.clear();
        let wire_now = stats.snapshot();
        let wire = traffic_delta(&wire_now, &prev_wire);
        prev_wire = wire_now;
        rads_core::obs::publish_traffic(&wire);
        let summary = machine_summary(machine, &output, &wire, elapsed, node.reconnects());
        // final-metrics-then-result ordering on one connection: when the
        // coordinator holds this query's result it also holds this
        // machine's registry snapshot covering it
        node.metrics_publisher(0).send(&Registry::global().snapshot().encode());
        node.send_result(0, &encode_query_report(job.id, &summary, hit))
            .map_err(|e| format!("machine {machine}: cannot deliver query report: {e}"))?;
    }
    node.finish_shutdown();
    Ok(())
}

// ---------------------------------------------------------------------------
// serve coordinator
// ---------------------------------------------------------------------------

/// Knobs of [`run_serve_coordinator`] beyond the cluster spec.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Reject queries whose estimated footprint exceeds this many bytes
    /// (`None` = admit everything; the runtime governor still enforces the
    /// budget during execution).
    pub admission_bytes: Option<u64>,
    /// Bind address of the client front door (TCP).
    pub client_addr: String,
    /// Bind address of the Prometheus text page (TCP).
    pub http_addr: String,
    /// Hard per-query deadline: dispatch to all-reports.
    pub query_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            admission_bytes: None,
            client_addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            query_timeout: Duration::from_secs(300),
        }
    }
}

/// One client request travelling from a handler thread to the serve loop.
struct ClientJob {
    op: ClientOp,
    reply: mpsc::Sender<QueryReply>,
}

/// Mutable per-cluster serving state owned by the coordinator's main loop.
struct ServeHost {
    spec: ClusterSpec,
    partitioned: Arc<PartitionedGraph>,
    node: SocketNode,
    ctx: MachineContext,
    daemon: Arc<ServeDaemon>,
    stats: Arc<NetworkStats>,
    plan_cache: PlanCache,
    base_budget: MemoryBudget,
    admission_bytes: Option<u64>,
    query_timeout: Duration,
    prev_wire: TrafficSnapshot,
    prev_metrics: MetricsSnapshot,
    next_query_id: u64,
}

impl ServeHost {
    fn execute(&mut self, pattern_name: &str, budget: Option<u64>) -> QueryReply {
        let registry = Registry::global();
        let Some(pattern) = queries::query_by_name(pattern_name) else {
            return QueryReply::Error { message: format!("unknown query {pattern_name:?}") };
        };
        let (plan, hit) = self.plan_cache.get_or_compute(&pattern, SERVE_RHO);
        if let Some(limit) = self.admission_bytes {
            let estimate = estimate_query_footprint(&self.partitioned, &pattern);
            if estimate > limit {
                registry.counter("rads_serve_rejected_total").inc();
                return QueryReply::Rejected { estimate, limit };
            }
        }
        self.next_query_id += 1;
        let id = self.next_query_id;
        let queue: GroupQueue = new_group_queue();
        self.daemon.install(Arc::new(RadsDaemon::new(self.partitioned.clone(), 0, queue.clone())));
        let start = Instant::now();
        for m in 1..self.spec.machines {
            let dispatched = self.ctx.request(
                m,
                Request::Query { id, pattern: pattern_name.to_string(), budget },
            );
            match dispatched {
                Ok(Response::Ack) => {}
                Ok(other) => {
                    self.daemon.clear();
                    return QueryReply::Error {
                        message: format!("machine {m} answered dispatch with {other:?}"),
                    };
                }
                Err(e) => {
                    self.daemon.clear();
                    return QueryReply::Error {
                        message: format!("cannot dispatch to machine {m}: {e}"),
                    };
                }
            }
        }
        let config = query_engine_config(&self.spec, pattern_name, &self.base_budget, budget);
        let output = run_machine(&self.ctx, &pattern, &plan, &config, queue);
        let worker_ids: Vec<usize> = (1..self.spec.machines).collect();
        let mut payloads = Vec::new();
        if !worker_ids.is_empty() {
            let deadline = Instant::now() + self.query_timeout;
            loop {
                match self.node.wait_results(&worker_ids, Duration::from_millis(500)) {
                    Ok(p) => {
                        payloads = p;
                        break;
                    }
                    Err(missing) => {
                        if Instant::now() >= deadline {
                            self.daemon.clear();
                            return QueryReply::Error {
                                message: format!(
                                    "query {id}: no report from machines {missing:?} within {}s",
                                    self.query_timeout.as_secs()
                                ),
                            };
                        }
                    }
                }
            }
        }
        let elapsed = start.elapsed();
        self.daemon.clear();
        let mut per_machine = vec![(0u32, output.count)];
        for payload in payloads {
            match decode_query_report(&payload) {
                Ok((rid, summary, _worker_hit)) if rid == id => {
                    per_machine.push((summary.machine as u32, summary.embeddings));
                }
                Ok((rid, _, _)) => {
                    return QueryReply::Error {
                        message: format!("stale report for query {rid} while running {id}"),
                    }
                }
                Err(e) => return QueryReply::Error { message: e },
            }
        }
        let wire_now = self.stats.snapshot();
        rads_core::obs::publish_traffic(&traffic_delta(&wire_now, &self.prev_wire));
        self.prev_wire = wire_now;
        registry.counter("rads_serve_queries_total").inc();
        // cluster-cumulative = own registry + every worker's latest
        // (cumulative) snapshot; this query's share is the delta against
        // the previous query's cluster-cumulative
        let mut cluster_now = registry.snapshot();
        for (machine, payload) in self.node.take_metrics() {
            match MetricsSnapshot::decode(&payload) {
                Ok(worker) => cluster_now.absorb(&worker),
                Err(e) => {
                    return QueryReply::Error {
                        message: format!("machine {machine} sent an undecodable metrics frame: {e}"),
                    }
                }
            }
        }
        let per_query = cluster_now.delta_since(&self.prev_metrics);
        self.prev_metrics = cluster_now;
        QueryReply::Ok {
            count: per_machine.iter().map(|&(_, c)| c).sum(),
            elapsed_us: elapsed.as_micros() as u64,
            plan_cache_hit: hit,
            per_machine,
            metrics_json: per_query.to_json(),
        }
    }
}

/// The `serve-worker` argument vector for machine `machine`: the one-shot
/// worker contract ([`worker_args`]) with the mode swapped. The `--query`
/// flag rides along as a placeholder — serve workers receive their queries
/// over the wire and ignore the spec's query field.
pub fn serve_worker_args(
    spec: &ClusterSpec,
    machine: usize,
    addrs: &[PeerAddr],
    timeout: Duration,
) -> Vec<String> {
    let mut args = worker_args(spec, machine, addrs, timeout);
    args[0] = "serve-worker".to_string();
    args
}

/// Runs the resident serve coordinator until a client orders shutdown.
///
/// Startup: spawn `spec.machines - 1` `serve-worker` processes, build the
/// partition, start the fabric node, the Prometheus page and the client
/// front door, then print **one line of JSON** on stdout —
/// `{"serving":true,"client_addr":...,"http_addr":...,...}` — the
/// machine-readable "ready" contract clients (and the serve smoke test)
/// wait for. After that, queries stream in over client connections and are
/// executed strictly in submission order; `ClientOp::Shutdown` tears the
/// whole cluster down.
pub fn run_serve_coordinator(
    spec: &ClusterSpec,
    kind: TransportKind,
    node_binary: &Path,
    options: &ServeOptions,
) -> Result<(), String> {
    let kind = kind.effective();
    if spec.machines == 0 {
        return Err("a serve cluster needs at least one machine".to_string());
    }
    rads_obs::set_metrics_enabled(true);
    rads_obs::set_trace_process(0);
    let addrs = allocate_addrs(kind, spec.machines)?;
    // a generous fabric-level timeout: serve workers wait for work, not
    // for a single run's shutdown order
    let worker_timeout = Duration::from_secs(24 * 3600);
    let mut children: Vec<(usize, Child)> = Vec::new();
    for machine in 1..spec.machines {
        let child = Command::new(node_binary)
            .args(serve_worker_args(spec, machine, &addrs, worker_timeout))
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| {
                format!("cannot spawn serve worker {machine} ({}): {e}", node_binary.display())
            })?;
        children.push((machine, child));
    }
    let serve = (|| {
        let listener = SocketListener::bind(&addrs[0])
            .map_err(|e| format!("cannot bind {}: {e}", addrs[0]))?;
        let partitioned = build_partitioned(spec);
        let stats = Arc::new(NetworkStats::new(spec.machines));
        let daemon: Arc<ServeDaemon> = Arc::new(ServeDaemon::new(partitioned.clone(), 0));
        let node = SocketNode::start_with_listener(
            0,
            addrs.clone(),
            listener,
            daemon.clone(),
            stats.clone(),
        );
        let ctx = MachineContext::assemble(partitioned.clone(), node.transport(), daemon.clone());
        let http = MetricsHttpServer::bind(&options.http_addr)
            .map_err(|e| format!("cannot bind metrics page {}: {e}", options.http_addr))?;
        let client_listener = TcpListener::bind(&options.client_addr)
            .map_err(|e| format!("cannot bind client door {}: {e}", options.client_addr))?;
        let client_addr = client_listener
            .local_addr()
            .map_err(|e| format!("cannot read client door address: {e}"))?;
        println!(
            concat!(
                "{{\"serving\":true,\"client_addr\":\"{}\",\"http_addr\":\"{}\",",
                "\"machines\":{},\"transport\":\"{}\",\"dataset\":\"{}\",\"scale\":{},",
                "\"admission_bytes\":{}}}"
            ),
            client_addr,
            http.addr(),
            spec.machines,
            kind.name(),
            spec.dataset.name(),
            spec.scale,
            options.admission_bytes.map_or("null".to_string(), |b| b.to_string()),
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        let (job_tx, job_rx) = mpsc::channel::<ClientJob>();
        // Accept loop + one handler thread per connection. The threads are
        // deliberately detached: they block in socket reads, the process
        // exits right after the serve loop ends, and a half-served client
        // at shutdown sees a closed connection either way.
        std::thread::Builder::new()
            .name("rads-serve-accept".to_string())
            .spawn(move || {
                for stream in client_listener.incoming() {
                    let Ok(stream) = stream else { break };
                    let job_tx = job_tx.clone();
                    let spawned = std::thread::Builder::new()
                        .name("rads-serve-client".to_string())
                        .spawn(move || serve_client(stream, &job_tx));
                    if spawned.is_err() {
                        break;
                    }
                }
            })
            .map_err(|e| format!("cannot spawn client accept thread: {e}"))?;

        let mut host = ServeHost {
            spec: spec.clone(),
            partitioned,
            node,
            ctx,
            daemon,
            stats: stats.clone(),
            plan_cache: PlanCache::new(),
            base_budget: startup_budget(spec),
            admission_bytes: options.admission_bytes,
            query_timeout: options.query_timeout,
            prev_wire: stats.snapshot(),
            prev_metrics: Registry::global().snapshot(),
            next_query_id: 0,
        };
        // the serve loop: strictly serialized execution in submission order
        while let Ok(job) = job_rx.recv() {
            match job.op {
                ClientOp::Query { pattern, budget } => {
                    let reply = host.execute(&pattern, budget);
                    let _ = job.reply.send(reply);
                }
                ClientOp::Shutdown => {
                    let _ = job.reply.send(QueryReply::ShutdownAck);
                    break;
                }
            }
        }
        host.node.broadcast_shutdown();
        host.node.finish_shutdown();
        drop(http);
        Ok(())
    })();

    // reap the workers (they received the shutdown order) — same contract
    // as the one-shot coordinator
    let result = serve.and_then(|()| {
        let reap_deadline = Instant::now() + Duration::from_secs(10);
        for (machine, child) in children.iter_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => break,
                    Ok(Some(status)) => {
                        return Err(format!("serve worker {machine} exited with {status}"))
                    }
                    Ok(None) if Instant::now() >= reap_deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(format!("serve worker {machine} ignored shutdown"));
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(e) => return Err(format!("waiting for serve worker {machine}: {e}")),
                }
            }
        }
        Ok(())
    });
    if result.is_err() {
        for (_, child) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    if let Some(PeerAddr::Uds(path)) = addrs.first() {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    result
}

/// Serves one client connection: a stream of `Query` frames, each answered
/// with a `QueryResult` frame echoing the correlation id. The connection
/// closes after a shutdown op, a malformed frame, or the client hanging up.
fn serve_client(mut stream: std::net::TcpStream, job_tx: &mpsc::Sender<ClientJob>) {
    loop {
        let frame = match read_message(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        if frame.kind != FrameKind::Query {
            return;
        }
        let reply = match decode_client_op(&frame.payload) {
            Ok(op) => {
                // a shutdown op closes the connection even when the serve
                // loop is already gone and the reply degraded to an error
                let is_shutdown = op == ClientOp::Shutdown;
                let (reply_tx, reply_rx) = mpsc::channel();
                let gone = QueryReply::Error { message: "server is shutting down".to_string() };
                let reply = if job_tx.send(ClientJob { op, reply: reply_tx }).is_ok() {
                    reply_rx.recv().unwrap_or(gone)
                } else {
                    gone
                };
                if is_shutdown {
                    QueryReply::ShutdownAck
                } else {
                    reply
                }
            }
            Err(e) => QueryReply::Error { message: format!("bad request: {e}") },
        };
        let done = matches!(reply, QueryReply::ShutdownAck);
        if write_message(
            &mut stream,
            FrameKind::QueryResult,
            frame.correlation,
            &encode_query_reply(&reply),
        )
        .is_err()
            || done
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// client side (the rads-query binary's engine room)
// ---------------------------------------------------------------------------

/// Sends one [`ClientOp`] to a serve coordinator at `addr`
/// (`host:port` of the client front door) and returns its reply.
pub fn client_round_trip(addr: &str, op: &ClientOp, correlation: u64) -> Result<QueryReply, String> {
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_message(&mut stream, FrameKind::Query, correlation, &encode_client_op(op))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let frame = read_message(&mut stream)
        .map_err(|e| format!("cannot read reply: {e}"))?
        .ok_or("server closed the connection without replying")?;
    if frame.kind != FrameKind::QueryResult {
        return Err(format!("unexpected reply frame {:?}", frame.kind));
    }
    if frame.correlation != correlation {
        return Err(format!(
            "reply correlation {} does not echo request {correlation}",
            frame.correlation
        ));
    }
    decode_query_reply(&frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::ring_lattice;
    use rads_partition::{BfsPartitioner, Partitioner};

    fn small_partitioned() -> Arc<PartitionedGraph> {
        let g = ring_lattice(16, 0);
        Arc::new(PartitionedGraph::build(&g, BfsPartitioner.partition(&g, 2)))
    }

    #[test]
    fn client_op_roundtrip() {
        for op in [
            ClientOp::Query { pattern: "q1".to_string(), budget: None },
            ClientOp::Query { pattern: "house with end vertex".to_string(), budget: Some(1 << 20) },
            ClientOp::Shutdown,
        ] {
            assert_eq!(decode_client_op(&encode_client_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn query_reply_roundtrip() {
        for reply in [
            QueryReply::Ok {
                count: 42,
                elapsed_us: 1234,
                plan_cache_hit: true,
                per_machine: vec![(0, 30), (1, 12)],
                metrics_json: "{\"metrics\":[]}".to_string(),
            },
            QueryReply::Rejected { estimate: 1 << 40, limit: 1 << 20 },
            QueryReply::Error { message: "unknown query \"q9\"".to_string() },
            QueryReply::ShutdownAck,
        ] {
            assert_eq!(decode_query_reply(&encode_query_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn query_report_roundtrip() {
        let summary = MachineSummary {
            machine: 3,
            embeddings: 77,
            sme_embeddings: 70,
            wire_bytes: 1024,
            wire_messages: 6,
            fetch_wait_demand_us: 12,
            fetch_wait_prefetch_us: 3,
            elapsed_ms: 1.5,
            rpc_retries: 0,
            reconnects: 0,
        };
        let buf = encode_query_report(9, &summary, true);
        assert_eq!(buf.len(), QUERY_REPORT_BYTES);
        let (id, decoded, hit) = decode_query_report(&buf).unwrap();
        assert_eq!(id, 9);
        assert!(hit);
        assert_eq!(decoded, summary);
    }

    #[test]
    fn serve_daemon_is_quiet_between_queries() {
        let daemon = ServeDaemon::new(small_partitioned(), 0);
        assert_eq!(daemon.handle(1, Request::CheckRegionGroups), Response::RegionGroupCount(0));
        assert_eq!(daemon.handle(1, Request::ShareRegionGroup), Response::RegionGroup(None));
        // no job queue: a stray Query RPC is unsupported, not silently lost
        let q = Request::Query { id: 1, pattern: "q1".to_string(), budget: None };
        assert_eq!(daemon.handle(1, q), Response::Unsupported);
    }

    #[test]
    fn serve_daemon_routes_checkr_to_the_installed_query() {
        let partitioned = small_partitioned();
        let daemon = ServeDaemon::new(partitioned.clone(), 0);
        let queue = new_group_queue();
        queue.lock().push_back(vec![1, 2, 3]);
        daemon.install(Arc::new(RadsDaemon::new(partitioned, 0, queue)));
        assert_eq!(daemon.handle(1, Request::CheckRegionGroups), Response::RegionGroupCount(1));
        assert_eq!(
            daemon.handle(1, Request::ShareRegionGroup),
            Response::RegionGroup(Some(vec![1, 2, 3]))
        );
        daemon.clear();
        assert_eq!(daemon.handle(1, Request::CheckRegionGroups), Response::RegionGroupCount(0));
    }

    #[test]
    fn serve_daemon_enqueues_query_jobs_and_acks() {
        let (tx, rx) = mpsc::channel();
        let daemon = ServeDaemon::with_job_queue(small_partitioned(), 1, tx);
        let q = Request::Query { id: 7, pattern: "q1".to_string(), budget: Some(64) };
        assert_eq!(daemon.handle(0, q), Response::Ack);
        let job = rx.try_recv().unwrap();
        assert_eq!(job, QueryJob { id: 7, pattern: "q1".to_string(), budget: Some(64) });
        // partition-backed requests still served while idle
        match daemon.handle(0, Request::FetchVertices(vec![0])) {
            Response::Adjacency(lists) => assert_eq!(lists.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traffic_delta_subtracts_per_field() {
        let prev = TrafficSnapshot {
            messages: 10,
            total_bytes: 1000,
            control_bytes: 100,
            per_machine_bytes: vec![600, 400],
        };
        let now = TrafficSnapshot {
            messages: 15,
            total_bytes: 1500,
            control_bytes: 120,
            per_machine_bytes: vec![900, 600],
        };
        let delta = traffic_delta(&now, &prev);
        assert_eq!(delta.messages, 5);
        assert_eq!(delta.total_bytes, 500);
        assert_eq!(delta.control_bytes, 20);
        assert_eq!(delta.per_machine_bytes, vec![300, 200]);
    }
}
