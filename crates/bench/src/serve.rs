//! Serving mode (`rads-node serve`): a resident query-serving cluster.
//!
//! The one-shot modes in [`crate::procs`] pay the dominant cost of a run —
//! generating and partitioning the dataset in every process — once *per
//! query*. Serving mode pays it once per *process lifetime*: every machine
//! loads its partition, starts its [`SocketNode`] and then stays resident,
//! answering a stream of pattern queries over the same socket fabric.
//!
//! # Architecture
//!
//! * The **serve coordinator** (machine 0) opens two extra doors next to
//!   its inter-machine listener: a TCP **client front door** speaking
//!   [`FrameKind::Query`] / [`FrameKind::QueryResult`] frames (payloads
//!   defined here, see [`ClientOp`] / [`QueryReply`]), and a Prometheus
//!   text page ([`MetricsHttpServer`]) continuously serving the process
//!   registry.
//! * **Serve workers** run a pool of executor threads instead of a single
//!   engine run: the coordinator dispatches each admitted query as a
//!   [`Request::Query`] RPC (acknowledged immediately, executed from a
//!   queue), every machine runs the unmodified
//!   [`rads_core::engine::run_machine`] on a query-scoped
//!   [`MachineContext`] ([`MachineContext::for_query`]), and each worker
//!   delivers a per-query report as a result frame tagged with the query's
//!   [`QueryId`].
//! * **Concurrent execution**: independent queries run side by side, up to
//!   `--max-concurrent-queries` at a time. Every engine-facing RPC travels
//!   in a query-scoped [`Envelope`], so the fabric keeps the streams
//!   apart end to end — [`ServeDaemon`] routes `checkR` / `shareR` to the
//!   requesting query's own [`RadsDaemon`] via a per-query **routing
//!   table**, result frames and retry/backoff are correlated per query,
//!   and one query's stalled worker cannot swallow another query's
//!   responses.
//!
//! # Admission control
//!
//! Before dispatching, the coordinator estimates the query's memory
//! footprint ([`rads_core::estimate_query_footprint`] — deliberately
//! conservative) and rejects it with a structured [`QueryReply::Rejected`]
//! when the estimate alone exceeds the configured admission limit.
//! Admitted queries then pass the **joint** gate: the sum of the in-flight
//! queries' estimates must stay within `--admission-bytes`, and at most
//! `--max-concurrent-queries` may execute at once — a query that does not
//! fit *waits* (FIFO-ish on the scheduler's condvar) rather than being
//! rejected. An admitted query is still governed at runtime by the
//! per-machine memory governor (budget Φ applies per query, so the
//! worst-case resident footprint is `max_concurrent · Φ`); admission is a
//! cheap front gate, not the enforcement mechanism.
//!
//! # State the queries share — and the reuse contract
//!
//! A resident cluster must not bleed state between queries — including
//! between *concurrent* queries. Per query, every machine constructs a
//! fresh region-group queue and [`RadsDaemon`] (installed into its
//! [`ServeDaemon`] routing table under the query's id for the duration of
//! the run); engine stats, the embedding trie and the foreign-vertex
//! cache live inside `run_machine` and die with it. What intentionally
//! persists: the partitioned graph, the plan cache ([`PlanCache`] — keyed
//! by canonical pattern signature, hits observable as
//! `rads_plan_cache_hits_total`), and the process-global metrics registry,
//! which stays *cumulative* (that is what the Prometheus page serves).
//! Per-query metrics in the reply are computed via a per-query epoch
//! ledger ([`rads_obs::EpochLedger`]): each query diffs the cluster-wide
//! registry against the baseline captured at **its own** admission, so
//! overlapping queries never steal each other's baseline. Under overlap a
//! query's delta is a conservative superset (it includes work a
//! concurrently running query did inside its window); for serialized
//! queries it is exact.
//!
//! The engine's memory budget is resolved **once at startup** (explicit
//! `--budget` flag or one read of `RADS_MEMORY_BUDGET`); a per-query
//! client override applies to that query only. The environment is never
//! re-read while serving.

use std::collections::HashMap;
use std::net::TcpListener;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use rads_core::daemon::{new_group_queue, GroupQueue, RadsDaemon};
use rads_core::engine::run_machine;
use rads_core::memory::MemoryBudget;
use rads_core::{estimate_query_footprint, PlanCache};
use rads_graph::queries;
use rads_obs::{EpochLedger, MetricsHttpServer, MetricsSnapshot, Registry};
use rads_partition::{MachineId, PartitionedGraph};
use rads_runtime::wire::{read_message, write_message, FrameKind};
use rads_runtime::{
    Daemon, Envelope, MachineContext, NetworkStats, PartitionDaemon, PeerAddr, QueryId, Request,
    Response, SocketListener, SocketNode, TrafficSnapshot, TransportKind,
};

use crate::procs::{
    allocate_addrs, build_partitioned, decode_result, encode_result, engine_config_with,
    machine_summary, worker_args, ClusterSpec, MachineSummary, RESULT_PAYLOAD_BYTES,
};

/// The planner exponent every serve machine pins, matching the one-shot
/// modes (`best_plan(&pattern, &PlannerConfig { rho: 1.0 })`): equal
/// inputs are what keep the per-machine plan caches agreeing without
/// coordination.
const SERVE_RHO: f64 = 1.0;

/// How long a serve worker's executor threads wait on each of their
/// wake-up sources (the stop flag and the job channel) before checking the
/// other.
const JOB_POLL: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------------
// client protocol (payloads of FrameKind::Query / FrameKind::QueryResult)
// ---------------------------------------------------------------------------

const OP_QUERY: u8 = 0;
const OP_SHUTDOWN: u8 = 1;

const REPLY_OK: u8 = 0;
const REPLY_REJECTED: u8 = 1;
const REPLY_ERROR: u8 = 2;
const REPLY_SHUTDOWN_ACK: u8 = 3;

/// What a client asks the serve coordinator to do (the payload of a
/// [`FrameKind::Query`] frame; the frame's correlation id is echoed in the
/// reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Run `pattern` (a [`rads_graph::queries::query_by_name`] name) on
    /// the resident cluster, optionally overriding the per-group memory
    /// budget (bytes) for this query only.
    Query {
        /// Pattern name.
        pattern: String,
        /// Per-query budget override in bytes.
        budget: Option<u64>,
    },
    /// Shut the whole serve cluster down after replying.
    Shutdown,
}

/// Encodes a [`ClientOp`] as a `Query` frame payload.
pub fn encode_client_op(op: &ClientOp) -> Vec<u8> {
    let mut buf = Vec::new();
    match op {
        ClientOp::Query { pattern, budget } => {
            buf.push(OP_QUERY);
            buf.extend_from_slice(&(pattern.len() as u16).to_le_bytes());
            buf.extend_from_slice(pattern.as_bytes());
            match budget {
                Some(bytes) => {
                    buf.push(1);
                    buf.extend_from_slice(&bytes.to_le_bytes());
                }
                None => buf.push(0),
            }
        }
        ClientOp::Shutdown => buf.push(OP_SHUTDOWN),
    }
    buf
}

/// Decodes a `Query` frame payload.
pub fn decode_client_op(buf: &[u8]) -> Result<ClientOp, String> {
    let op = *buf.first().ok_or("empty client frame")?;
    match op {
        OP_SHUTDOWN => Ok(ClientOp::Shutdown),
        OP_QUERY => {
            let len = u16::from_le_bytes(
                buf.get(1..3).ok_or("truncated pattern length")?.try_into().expect("2 bytes"),
            ) as usize;
            let pattern = std::str::from_utf8(
                buf.get(3..3 + len).ok_or("truncated pattern name")?,
            )
            .map_err(|_| "pattern name is not UTF-8".to_string())?
            .to_string();
            let mut at = 3 + len;
            let flag = *buf.get(at).ok_or("truncated budget flag")?;
            at += 1;
            let budget = match flag {
                0 => None,
                1 => Some(u64::from_le_bytes(
                    buf.get(at..at + 8).ok_or("truncated budget")?.try_into().expect("8 bytes"),
                )),
                other => return Err(format!("bad budget flag {other}")),
            };
            Ok(ClientOp::Query { pattern, budget })
        }
        other => Err(format!("unknown client op {other}")),
    }
}

/// The serve coordinator's answer to one [`ClientOp`] (the payload of the
/// [`FrameKind::QueryResult`] frame echoing the request's correlation id).
///
/// Every per-query variant carries the coordinator-assigned `query_id` —
/// the same id that scopes the query's fabric envelopes, routing-table
/// entry and metric epoch — so clients running several queries at once can
/// attribute replies and server-side observability to each other.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query ran to completion on every machine.
    Ok {
        /// The coordinator-assigned query id (unique per serve lifetime).
        query_id: u64,
        /// Embeddings over all machines — bit-identical to a one-shot run
        /// of the same query on the same spec.
        count: u64,
        /// Coordinator-measured wall clock, dispatch to all-reports, µs.
        elapsed_us: u64,
        /// Whether the coordinator served the plan from its cache.
        plan_cache_hit: bool,
        /// Per-machine embedding counts, machine 0 first.
        per_machine: Vec<(u32, u64)>,
        /// This query's *delta* of the cluster-wide metrics registry
        /// (JSON, [`MetricsSnapshot::to_json`] shape) — epoch-scoped to
        /// this query, free of cross-query baseline races by construction.
        metrics_json: String,
    },
    /// Admission control refused the query: its estimated footprint alone
    /// exceeds the admission limit. Nothing was dispatched.
    Rejected {
        /// The coordinator-assigned query id.
        query_id: u64,
        /// Estimated bytes ([`estimate_query_footprint`]).
        estimate: u64,
        /// The configured admission limit in bytes.
        limit: u64,
    },
    /// The query failed (unknown pattern, lost worker, timeout).
    Error {
        /// The coordinator-assigned query id (0 when the failure precedes
        /// id assignment, e.g. a malformed request).
        query_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges [`ClientOp::Shutdown`]; the cluster exits after this.
    ShutdownAck,
}

/// Encodes a [`QueryReply`] as a `QueryResult` frame payload.
pub fn encode_query_reply(reply: &QueryReply) -> Vec<u8> {
    let mut buf = Vec::new();
    match reply {
        QueryReply::Ok {
            query_id,
            count,
            elapsed_us,
            plan_cache_hit,
            per_machine,
            metrics_json,
        } => {
            buf.push(REPLY_OK);
            buf.extend_from_slice(&query_id.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
            buf.extend_from_slice(&elapsed_us.to_le_bytes());
            buf.push(u8::from(*plan_cache_hit));
            buf.extend_from_slice(&(per_machine.len() as u32).to_le_bytes());
            for (machine, embeddings) in per_machine {
                buf.extend_from_slice(&machine.to_le_bytes());
                buf.extend_from_slice(&embeddings.to_le_bytes());
            }
            buf.extend_from_slice(&(metrics_json.len() as u32).to_le_bytes());
            buf.extend_from_slice(metrics_json.as_bytes());
        }
        QueryReply::Rejected { query_id, estimate, limit } => {
            buf.push(REPLY_REJECTED);
            buf.extend_from_slice(&query_id.to_le_bytes());
            buf.extend_from_slice(&estimate.to_le_bytes());
            buf.extend_from_slice(&limit.to_le_bytes());
        }
        QueryReply::Error { query_id, message } => {
            buf.push(REPLY_ERROR);
            buf.extend_from_slice(&query_id.to_le_bytes());
            buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
            buf.extend_from_slice(message.as_bytes());
        }
        QueryReply::ShutdownAck => buf.push(REPLY_SHUTDOWN_ACK),
    }
    buf
}

/// Decodes a `QueryResult` frame payload.
pub fn decode_query_reply(buf: &[u8]) -> Result<QueryReply, String> {
    let status = *buf.first().ok_or("empty reply frame")?;
    let u64_at = |at: usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            buf.get(at..at + 8).ok_or("truncated u64")?.try_into().expect("8 bytes"),
        ))
    };
    match status {
        REPLY_SHUTDOWN_ACK => Ok(QueryReply::ShutdownAck),
        REPLY_REJECTED => Ok(QueryReply::Rejected {
            query_id: u64_at(1)?,
            estimate: u64_at(9)?,
            limit: u64_at(17)?,
        }),
        REPLY_ERROR => {
            let query_id = u64_at(1)?;
            let len = u32::from_le_bytes(
                buf.get(9..13).ok_or("truncated message length")?.try_into().expect("4 bytes"),
            ) as usize;
            let message = std::str::from_utf8(buf.get(13..13 + len).ok_or("truncated message")?)
                .map_err(|_| "error message is not UTF-8".to_string())?
                .to_string();
            Ok(QueryReply::Error { query_id, message })
        }
        REPLY_OK => {
            let query_id = u64_at(1)?;
            let count = u64_at(9)?;
            let elapsed_us = u64_at(17)?;
            let plan_cache_hit = match buf.get(25) {
                Some(0) => false,
                Some(1) => true,
                _ => return Err("bad plan-cache flag".to_string()),
            };
            let machines = u32::from_le_bytes(
                buf.get(26..30).ok_or("truncated machine count")?.try_into().expect("4 bytes"),
            ) as usize;
            let mut at = 30;
            let mut per_machine = Vec::with_capacity(machines);
            for _ in 0..machines {
                let machine = u32::from_le_bytes(
                    buf.get(at..at + 4).ok_or("truncated machine id")?.try_into().expect("4 bytes"),
                );
                per_machine.push((machine, u64_at(at + 4)?));
                at += 12;
            }
            let len = u32::from_le_bytes(
                buf.get(at..at + 4).ok_or("truncated metrics length")?.try_into().expect("4 bytes"),
            ) as usize;
            at += 4;
            let metrics_json =
                std::str::from_utf8(buf.get(at..at + len).ok_or("truncated metrics json")?)
                    .map_err(|_| "metrics json is not UTF-8".to_string())?
                    .to_string();
            Ok(QueryReply::Ok {
                query_id,
                count,
                elapsed_us,
                plan_cache_hit,
                per_machine,
                metrics_json,
            })
        }
        other => Err(format!("unknown reply status {other}")),
    }
}

// ---------------------------------------------------------------------------
// per-query worker report (worker → coordinator result frame)
// ---------------------------------------------------------------------------

/// `[query id u64][plan-cache hit u8][the one-shot 76-byte MachineSummary]`.
const QUERY_REPORT_BYTES: usize = 8 + 1 + RESULT_PAYLOAD_BYTES;

fn encode_query_report(id: u64, summary: &MachineSummary, hit: bool) -> Vec<u8> {
    let mut buf = Vec::with_capacity(QUERY_REPORT_BYTES);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(u8::from(hit));
    buf.extend_from_slice(&encode_result(summary));
    buf
}

fn decode_query_report(buf: &[u8]) -> Result<(u64, MachineSummary, bool), String> {
    if buf.len() != QUERY_REPORT_BYTES {
        return Err(format!("query report of {} bytes, expected {QUERY_REPORT_BYTES}", buf.len()));
    }
    let id = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    let hit = buf[8] != 0;
    Ok((id, decode_result(&buf[9..])?, hit))
}

// ---------------------------------------------------------------------------
// the serve daemon
// ---------------------------------------------------------------------------

/// One queued query on a serve machine.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueryJob {
    id: u64,
    pattern: String,
    budget: Option<u64>,
}

/// The daemon of a resident serve machine.
///
/// `verifyE` / `fetchV` are answered from the partition at all times (a
/// peer may fetch while this machine is between queries). `checkR` /
/// `shareR` route **by the envelope's query id** through a per-query
/// routing table of [`RadsDaemon`] instances — each installed just before
/// its query's `run_machine` and cleared right after — so concurrent
/// queries' region-group queues never mix. A query id with no installed
/// route reports an empty queue, which a stealing peer treats as "nothing
/// to take": that is both the between-queries answer and the benign race
/// where a peer's steal probe beats this machine's job hand-off.
/// [`Request::Query`] is acknowledged immediately and enqueued for the
/// machine's executor pool (workers only; on the coordinator, queries
/// arrive through the client front door, never as fabric RPCs).
pub struct ServeDaemon {
    base: PartitionDaemon,
    routes: StdMutex<HashMap<u64, Arc<RadsDaemon>>>,
    jobs: Option<StdMutex<mpsc::Sender<QueryJob>>>,
}

impl ServeDaemon {
    /// A serve daemon with no job queue (the coordinator's).
    pub fn new(partitioned: Arc<PartitionedGraph>, machine: MachineId) -> ServeDaemon {
        ServeDaemon {
            base: PartitionDaemon::new(partitioned, machine),
            routes: StdMutex::new(HashMap::new()),
            jobs: None,
        }
    }

    fn with_job_queue(
        partitioned: Arc<PartitionedGraph>,
        machine: MachineId,
        jobs: mpsc::Sender<QueryJob>,
    ) -> ServeDaemon {
        ServeDaemon {
            base: PartitionDaemon::new(partitioned, machine),
            routes: StdMutex::new(HashMap::new()),
            jobs: Some(StdMutex::new(jobs)),
        }
    }

    /// Installs `query`'s daemon (fresh group queue and all) into the
    /// routing table.
    pub fn install(&self, query: QueryId, daemon: Arc<RadsDaemon>) {
        self.routes.lock().unwrap_or_else(|p| p.into_inner()).insert(query.0, daemon);
    }

    /// Removes `query`'s route once its engine run finished.
    pub fn clear(&self, query: QueryId) {
        self.routes.lock().unwrap_or_else(|p| p.into_inner()).remove(&query.0);
    }

    /// Number of queries currently routed (i.e. executing on this machine).
    pub fn active_queries(&self) -> usize {
        self.routes.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

impl Daemon for ServeDaemon {
    fn handle(&self, from: MachineId, envelope: Envelope) -> Response {
        match envelope.body {
            Request::Query { id, pattern, budget } => match &self.jobs {
                Some(tx) => {
                    let sent = tx
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .send(QueryJob { id, pattern, budget })
                        .is_ok();
                    if sent {
                        Response::Ack
                    } else {
                        Response::Unsupported
                    }
                }
                None => Response::Unsupported,
            },
            Request::CheckRegionGroups | Request::ShareRegionGroup => {
                let route = self
                    .routes
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .get(&envelope.query.0)
                    .cloned();
                match route {
                    Some(daemon) => daemon.handle(from, envelope),
                    // no route for this query id: an empty queue, not an
                    // error — a stealing peer that races the job hand-off
                    // (or probes a finished query) simply finds nothing
                    None => match envelope.body {
                        Request::CheckRegionGroups => Response::RegionGroupCount(0),
                        _ => Response::RegionGroup(None),
                    },
                }
            }
            _ => self.base.handle(from, envelope),
        }
    }
}

// ---------------------------------------------------------------------------
// shared per-process serve state
// ---------------------------------------------------------------------------

/// Resolves the memory budget a serve process uses for every query without
/// a client override. Called exactly once per process, at startup — the
/// construction-time snapshot that stops `RADS_MEMORY_BUDGET` flips from
/// changing a resident cluster's behaviour mid-stream.
fn startup_budget(spec: &ClusterSpec) -> MemoryBudget {
    match spec.budget {
        Some(bytes) => MemoryBudget::from_bytes(bytes),
        None => MemoryBudget::default_from_env(),
    }
}

fn per_query_budget(base: &MemoryBudget, override_bytes: Option<u64>) -> MemoryBudget {
    match override_bytes {
        Some(bytes) => MemoryBudget::from_bytes(bytes as usize),
        None => *base,
    }
}

fn traffic_delta(now: &TrafficSnapshot, prev: &TrafficSnapshot) -> TrafficSnapshot {
    let mut delta = now.clone();
    delta.messages = now.messages.saturating_sub(prev.messages);
    delta.total_bytes = now.total_bytes.saturating_sub(prev.total_bytes);
    delta.control_bytes = now.control_bytes.saturating_sub(prev.control_bytes);
    for (m, bytes) in delta.per_machine_bytes.iter_mut().enumerate() {
        *bytes = bytes.saturating_sub(prev.per_machine_bytes.get(m).copied().unwrap_or(0));
    }
    delta
}

/// Advances the shared previous-wire watermark and returns this query's
/// traffic delta. The node's traffic counters are process-cumulative, so
/// under concurrent queries a delta attributes bytes transferred during
/// the overlap to whichever query closes its window first — a conservative
/// superset per query (total bytes are never lost or double-counted across
/// the stream); with serialized queries the delta is exact.
fn take_wire_delta(stats: &NetworkStats, prev_wire: &StdMutex<TrafficSnapshot>) -> TrafficSnapshot {
    let mut prev = prev_wire.lock().unwrap_or_else(|p| p.into_inner());
    let now = stats.snapshot();
    let delta = traffic_delta(&now, &prev);
    *prev = now;
    delta
}

/// Builds the per-query engine config from the startup snapshot + the
/// query's name and budget. Never consults the environment.
fn query_engine_config(
    spec: &ClusterSpec,
    pattern_name: &str,
    base_budget: &MemoryBudget,
    budget_override: Option<u64>,
) -> rads_core::engine::EngineConfig {
    let mut spec = spec.clone();
    spec.query = pattern_name.to_string();
    engine_config_with(&spec, per_query_budget(base_budget, budget_override))
}

// ---------------------------------------------------------------------------
// the query scheduler (coordinator-side joint admission)
// ---------------------------------------------------------------------------

struct SchedulerState {
    inflight: usize,
    inflight_bytes: u64,
}

/// Admission gate for concurrent queries: at most `max_concurrent` in
/// flight, and the in-flight footprint estimates must **jointly** stay
/// within the admission byte limit.
///
/// `admit` distinguishes two outcomes: a query whose estimate alone
/// exceeds the limit is *rejected* (it could never run), while a query
/// that merely does not fit **right now** *waits* on the condvar until
/// enough in-flight queries release their slots.
struct QueryScheduler {
    max_concurrent: usize,
    admission_bytes: Option<u64>,
    state: StdMutex<SchedulerState>,
    readmit: Condvar,
}

impl QueryScheduler {
    fn new(max_concurrent: usize, admission_bytes: Option<u64>) -> QueryScheduler {
        QueryScheduler {
            max_concurrent: max_concurrent.max(1),
            admission_bytes,
            state: StdMutex::new(SchedulerState { inflight: 0, inflight_bytes: 0 }),
            readmit: Condvar::new(),
        }
    }

    /// Blocks until `estimate` bytes fit jointly, then takes a slot.
    /// `Err((estimate, limit))` means the query can never be admitted.
    fn admit(&self, estimate: u64) -> Result<(), (u64, u64)> {
        if let Some(limit) = self.admission_bytes {
            if estimate > limit {
                return Err((estimate, limit));
            }
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            let fits_slots = state.inflight < self.max_concurrent;
            let fits_bytes = self
                .admission_bytes
                .is_none_or(|limit| state.inflight_bytes.saturating_add(estimate) <= limit);
            if fits_slots && fits_bytes {
                state.inflight += 1;
                state.inflight_bytes = state.inflight_bytes.saturating_add(estimate);
                Registry::global()
                    .gauge("rads_serve_inflight_queries")
                    .set(state.inflight as u64);
                return Ok(());
            }
            state = self.readmit.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Returns a slot and its byte share; wakes every waiter (multiple
    /// small queries may fit into one released large slot).
    fn release(&self, estimate: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.inflight = state.inflight.saturating_sub(1);
        state.inflight_bytes = state.inflight_bytes.saturating_sub(estimate);
        Registry::global().gauge("rads_serve_inflight_queries").set(state.inflight as u64);
        drop(state);
        self.readmit.notify_all();
    }
}

/// Releases the scheduler slot on every exit path of a query execution.
struct SlotGuard<'a> {
    scheduler: &'a QueryScheduler,
    estimate: u64,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.scheduler.release(self.estimate);
    }
}

// ---------------------------------------------------------------------------
// serve worker
// ---------------------------------------------------------------------------

/// Runs one resident serve worker: build the partition once, then run
/// `max_concurrent` executor threads that each loop — pick a queued
/// [`Request::Query`] job, run the engine on a query-scoped context,
/// deliver the per-query report — until the coordinator's shutdown order.
pub fn run_serve_worker(
    spec: &ClusterSpec,
    machine: usize,
    addrs: Vec<PeerAddr>,
    max_concurrent: usize,
) -> Result<(), String> {
    if machine == 0 || machine >= spec.machines {
        return Err(format!("serve worker id {machine} out of range 1..{}", spec.machines));
    }
    let max_concurrent = max_concurrent.max(1);
    // the Prometheus page and plan-cache counters are part of the serving
    // contract, so serve processes always record
    rads_obs::set_metrics_enabled(true);
    rads_obs::set_trace_process(machine as u64);
    let listener = SocketListener::bind(&addrs[machine])
        .map_err(|e| format!("machine {machine}: cannot bind {}: {e}", addrs[machine]))?;
    let partitioned = build_partitioned(spec);
    let stats = Arc::new(NetworkStats::new(spec.machines));
    let (job_tx, job_rx) = mpsc::channel();
    let daemon: Arc<ServeDaemon> =
        Arc::new(ServeDaemon::with_job_queue(partitioned.clone(), machine, job_tx));
    let node = Arc::new(SocketNode::start_with_listener(
        machine,
        addrs,
        listener,
        daemon.clone(),
        stats.clone(),
    ));
    let ctx = MachineContext::assemble(partitioned.clone(), node.transport(), daemon.clone());
    let plan_cache = Arc::new(PlanCache::new());
    let base_budget = startup_budget(spec);
    let prev_wire = Arc::new(StdMutex::new(stats.snapshot()));
    let job_rx = Arc::new(StdMutex::new(job_rx));
    let stop = Arc::new(AtomicBool::new(false));
    let fatal: Arc<StdMutex<Option<String>>> = Arc::new(StdMutex::new(None));
    let mut executors = Vec::with_capacity(max_concurrent);
    for slot in 0..max_concurrent {
        let exec = WorkerExecutor {
            spec: spec.clone(),
            machine,
            ctx: ctx.clone(),
            daemon: daemon.clone(),
            partitioned: partitioned.clone(),
            node: node.clone(),
            stats: stats.clone(),
            plan_cache: plan_cache.clone(),
            base_budget,
            prev_wire: prev_wire.clone(),
            job_rx: job_rx.clone(),
            stop: stop.clone(),
            fatal: fatal.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("rads-serve-exec-{slot}"))
            .spawn(move || exec.run())
            .map_err(|e| format!("machine {machine}: cannot spawn executor {slot}: {e}"))?;
        executors.push(handle);
    }
    // the main thread owns liveness: wait for the fabric shutdown order, or
    // for an executor to flag a fatal delivery failure
    loop {
        if node.wait_shutdown(JOB_POLL) || stop.load(Ordering::SeqCst) {
            break;
        }
    }
    stop.store(true, Ordering::SeqCst);
    for handle in executors {
        let _ = handle.join();
    }
    let node = Arc::try_unwrap(node)
        .map_err(|_| format!("machine {machine}: an executor leaked its node handle"))?;
    node.finish_shutdown();
    let first_error = fatal.lock().unwrap_or_else(|p| p.into_inner()).take();
    match first_error {
        Some(error) => Err(error),
        None => Ok(()),
    }
}

/// Everything one serve-worker executor thread needs to run queries.
struct WorkerExecutor {
    spec: ClusterSpec,
    machine: usize,
    ctx: MachineContext,
    daemon: Arc<ServeDaemon>,
    partitioned: Arc<PartitionedGraph>,
    node: Arc<SocketNode>,
    stats: Arc<NetworkStats>,
    plan_cache: Arc<PlanCache>,
    base_budget: MemoryBudget,
    prev_wire: Arc<StdMutex<TrafficSnapshot>>,
    job_rx: Arc<StdMutex<mpsc::Receiver<QueryJob>>>,
    stop: Arc<AtomicBool>,
    fatal: Arc<StdMutex<Option<String>>>,
}

impl WorkerExecutor {
    fn run(&self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            // hold the receiver lock only for one bounded poll: an executor
            // busy inside run_machine never blocks its siblings' polls
            let job = {
                let rx = self.job_rx.lock().unwrap_or_else(|p| p.into_inner());
                match rx.recv_timeout(JOB_POLL) {
                    Ok(job) => job,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            };
            if let Err(error) = self.run_query(job) {
                eprintln!("machine {}: {error}", self.machine);
                let mut fatal = self.fatal.lock().unwrap_or_else(|p| p.into_inner());
                fatal.get_or_insert(error);
                self.stop.store(true, Ordering::SeqCst);
                return;
            }
        }
    }

    fn run_query(&self, job: QueryJob) -> Result<(), String> {
        let Some(pattern) = queries::query_by_name(&job.pattern) else {
            // the coordinator validates names before dispatching; reaching
            // this means a version skew between binaries — report loudly
            // and let the coordinator's per-query deadline surface it
            eprintln!("machine {}: unknown query {:?}", self.machine, job.pattern);
            return Ok(());
        };
        let (plan, hit) = self.plan_cache.get_or_compute(&pattern, SERVE_RHO);
        let config = query_engine_config(&self.spec, &job.pattern, &self.base_budget, job.budget);
        let query = QueryId(job.id);
        let queue: GroupQueue = new_group_queue();
        self.daemon.install(
            query,
            Arc::new(RadsDaemon::new(self.partitioned.clone(), self.machine, queue.clone())),
        );
        let qctx = self.ctx.for_query(query);
        let start = Instant::now();
        let output = run_machine(&qctx, &pattern, &plan, &config, queue);
        let elapsed = start.elapsed();
        self.daemon.clear(query);
        let wire = take_wire_delta(&self.stats, &self.prev_wire);
        rads_core::obs::publish_traffic(&wire);
        let summary =
            machine_summary(self.machine, &output, &wire, elapsed, self.node.reconnects());
        // final-metrics-then-result ordering on one connection: when the
        // coordinator holds this query's result it also holds this
        // machine's registry snapshot covering it
        self.node.metrics_publisher(0).send(&Registry::global().snapshot().encode());
        self.node
            .send_result(0, query, &encode_query_report(job.id, &summary, hit))
            .map_err(|e| format!("cannot deliver query report: {e}"))
    }
}

// ---------------------------------------------------------------------------
// serve coordinator
// ---------------------------------------------------------------------------

/// Knobs of [`run_serve_coordinator`] beyond the cluster spec.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Reject queries whose estimated footprint exceeds this many bytes,
    /// and cap the **joint** in-flight estimate at it (`None` = admit
    /// everything; the runtime governor still enforces the budget during
    /// execution).
    pub admission_bytes: Option<u64>,
    /// Bind address of the client front door (TCP).
    pub client_addr: String,
    /// Bind address of the Prometheus text page (TCP).
    pub http_addr: String,
    /// Hard per-query deadline: dispatch to all-reports.
    pub query_timeout: Duration,
    /// How many admitted queries may execute concurrently (also the size
    /// of every worker's executor pool). 1 = the classic serialized serve
    /// loop.
    pub max_concurrent_queries: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            admission_bytes: None,
            client_addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            query_timeout: Duration::from_secs(300),
            max_concurrent_queries: 1,
        }
    }
}

/// One client request travelling from a handler thread to the serve loop.
struct ClientJob {
    op: ClientOp,
    reply: mpsc::Sender<QueryReply>,
}

/// Serving state shared by every in-flight query thread on the coordinator.
struct ServeShared {
    spec: ClusterSpec,
    partitioned: Arc<PartitionedGraph>,
    node: SocketNode,
    ctx: MachineContext,
    daemon: Arc<ServeDaemon>,
    stats: Arc<NetworkStats>,
    plan_cache: PlanCache,
    base_budget: MemoryBudget,
    query_timeout: Duration,
    scheduler: QueryScheduler,
    prev_wire: StdMutex<TrafficSnapshot>,
    ledger: EpochLedger,
    next_query_id: AtomicU64,
}

impl ServeShared {
    /// Runs one admitted-or-rejected query end to end. Called from a
    /// per-query thread; everything it touches is concurrency-safe by
    /// construction (routing table, query-scoped context, epoch ledger,
    /// scheduler slot guard).
    fn execute(&self, pattern_name: &str, budget: Option<u64>) -> QueryReply {
        let registry = Registry::global();
        // ids start at 1; QueryId::SOLO (0) stays reserved for one-shot runs
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed) + 1;
        let query = QueryId(id);
        let Some(pattern) = queries::query_by_name(pattern_name) else {
            return QueryReply::Error {
                query_id: id,
                message: format!("unknown query {pattern_name:?}"),
            };
        };
        let (plan, hit) = self.plan_cache.get_or_compute(&pattern, SERVE_RHO);
        let estimate = estimate_query_footprint(&self.partitioned, &pattern);
        if let Err((estimate, limit)) = self.scheduler.admit(estimate) {
            registry.counter("rads_serve_rejected_total").inc();
            return QueryReply::Rejected { query_id: id, estimate, limit };
        }
        let _slot = SlotGuard { scheduler: &self.scheduler, estimate };
        // per-query metric epoch: baseline = own registry + every worker's
        // latest cumulative snapshot, taken at *this* query's admission
        let mut baseline = registry.snapshot();
        for (machine, payload) in self.node.latest_metrics() {
            match MetricsSnapshot::decode(&payload) {
                Ok(worker) => baseline.absorb(&worker),
                Err(e) => {
                    return QueryReply::Error {
                        query_id: id,
                        message: format!(
                            "machine {machine} sent an undecodable metrics frame: {e}"
                        ),
                    }
                }
            }
        }
        self.ledger.begin(id, baseline);
        let queue: GroupQueue = new_group_queue();
        self.daemon.install(query, Arc::new(RadsDaemon::new(self.partitioned.clone(), 0, queue.clone())));
        let fail = |message: String| {
            self.daemon.clear(query);
            self.ledger.abort(id);
            QueryReply::Error { query_id: id, message }
        };
        let qctx = self.ctx.for_query(query);
        let start = Instant::now();
        for m in 1..self.spec.machines {
            let dispatched = qctx.request(
                m,
                Request::Query { id, pattern: pattern_name.to_string(), budget },
            );
            match dispatched {
                Ok(Response::Ack) => {}
                Ok(other) => {
                    return fail(format!("machine {m} answered dispatch with {other:?}"))
                }
                Err(e) => return fail(format!("cannot dispatch to machine {m}: {e}")),
            }
        }
        let config = query_engine_config(&self.spec, pattern_name, &self.base_budget, budget);
        let output = run_machine(&qctx, &pattern, &plan, &config, queue);
        let worker_ids: Vec<usize> = (1..self.spec.machines).collect();
        let mut payloads = Vec::new();
        if !worker_ids.is_empty() {
            let deadline = Instant::now() + self.query_timeout;
            loop {
                match self.node.wait_results(query, &worker_ids, Duration::from_millis(500)) {
                    Ok(p) => {
                        payloads = p;
                        break;
                    }
                    Err(missing) => {
                        if Instant::now() >= deadline {
                            return fail(format!(
                                "query {id}: no report from machines {missing:?} within {}s",
                                self.query_timeout.as_secs()
                            ));
                        }
                    }
                }
            }
        }
        let elapsed = start.elapsed();
        self.daemon.clear(query);
        let mut per_machine = vec![(0u32, output.count)];
        for payload in payloads {
            match decode_query_report(&payload) {
                Ok((rid, summary, _worker_hit)) if rid == id => {
                    per_machine.push((summary.machine as u32, summary.embeddings));
                }
                // wait_results is query-keyed, so a mismatched id inside
                // the payload means a corrupted report, not a stale one
                Ok((rid, _, _)) => {
                    return fail(format!("report tagged for query {rid} inside query {id}'s frame"))
                }
                Err(e) => return fail(e),
            }
        }
        let wire_now = self.stats.snapshot();
        {
            let mut prev = self.prev_wire.lock().unwrap_or_else(|p| p.into_inner());
            rads_core::obs::publish_traffic(&traffic_delta(&wire_now, &prev));
            *prev = wire_now;
        }
        registry.counter("rads_serve_queries_total").inc();
        // cluster-cumulative = own registry + every worker's latest
        // (cumulative) snapshot; this query's share is the delta against
        // the baseline its own epoch recorded at admission
        let mut cluster_now = registry.snapshot();
        for (machine, payload) in self.node.latest_metrics() {
            match MetricsSnapshot::decode(&payload) {
                Ok(worker) => cluster_now.absorb(&worker),
                Err(e) => {
                    return fail(format!(
                        "machine {machine} sent an undecodable metrics frame: {e}"
                    ))
                }
            }
        }
        let per_query = self.ledger.end(id, &cluster_now);
        QueryReply::Ok {
            query_id: id,
            count: per_machine.iter().map(|&(_, c)| c).sum(),
            elapsed_us: elapsed.as_micros() as u64,
            plan_cache_hit: hit,
            per_machine,
            metrics_json: per_query.to_json(),
        }
    }
}

/// The `serve-worker` argument vector for machine `machine`: the one-shot
/// worker contract ([`worker_args`]) with the mode swapped and the
/// executor-pool size appended. The `--query` flag rides along as a
/// placeholder — serve workers receive their queries over the wire and
/// ignore the spec's query field.
pub fn serve_worker_args(
    spec: &ClusterSpec,
    machine: usize,
    addrs: &[PeerAddr],
    timeout: Duration,
    max_concurrent: usize,
) -> Vec<String> {
    let mut args = worker_args(spec, machine, addrs, timeout);
    args[0] = "serve-worker".to_string();
    args.push("--max-concurrent-queries".to_string());
    args.push(max_concurrent.max(1).to_string());
    args
}

/// Runs the resident serve coordinator until a client orders shutdown.
///
/// Startup: spawn `spec.machines - 1` `serve-worker` processes, build the
/// partition, start the fabric node, the Prometheus page and the client
/// front door, then print **one line of JSON** on stdout —
/// `{"serving":true,"client_addr":...,"http_addr":...,...}` — the
/// machine-readable "ready" contract clients (and the serve smoke test)
/// wait for. After that, queries stream in over client connections; each
/// admitted query executes on its own thread, with the
/// [`QueryScheduler`] capping concurrency and the joint in-flight
/// footprint. `ClientOp::Shutdown` drains the in-flight queries, then
/// tears the whole cluster down.
pub fn run_serve_coordinator(
    spec: &ClusterSpec,
    kind: TransportKind,
    node_binary: &Path,
    options: &ServeOptions,
) -> Result<(), String> {
    let kind = kind.effective();
    if spec.machines == 0 {
        return Err("a serve cluster needs at least one machine".to_string());
    }
    rads_obs::set_metrics_enabled(true);
    rads_obs::set_trace_process(0);
    let addrs = allocate_addrs(kind, spec.machines)?;
    // a generous fabric-level timeout: serve workers wait for work, not
    // for a single run's shutdown order
    let worker_timeout = Duration::from_secs(24 * 3600);
    let mut children: Vec<(usize, Child)> = Vec::new();
    for machine in 1..spec.machines {
        let child = Command::new(node_binary)
            .args(serve_worker_args(
                spec,
                machine,
                &addrs,
                worker_timeout,
                options.max_concurrent_queries,
            ))
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| {
                format!("cannot spawn serve worker {machine} ({}): {e}", node_binary.display())
            })?;
        children.push((machine, child));
    }
    let serve = (|| {
        let listener = SocketListener::bind(&addrs[0])
            .map_err(|e| format!("cannot bind {}: {e}", addrs[0]))?;
        let partitioned = build_partitioned(spec);
        let stats = Arc::new(NetworkStats::new(spec.machines));
        let daemon: Arc<ServeDaemon> = Arc::new(ServeDaemon::new(partitioned.clone(), 0));
        let node = SocketNode::start_with_listener(
            0,
            addrs.clone(),
            listener,
            daemon.clone(),
            stats.clone(),
        );
        let ctx = MachineContext::assemble(partitioned.clone(), node.transport(), daemon.clone());
        let http = MetricsHttpServer::bind(&options.http_addr)
            .map_err(|e| format!("cannot bind metrics page {}: {e}", options.http_addr))?;
        let client_listener = TcpListener::bind(&options.client_addr)
            .map_err(|e| format!("cannot bind client door {}: {e}", options.client_addr))?;
        let client_addr = client_listener
            .local_addr()
            .map_err(|e| format!("cannot read client door address: {e}"))?;
        println!(
            concat!(
                "{{\"serving\":true,\"client_addr\":\"{}\",\"http_addr\":\"{}\",",
                "\"machines\":{},\"transport\":\"{}\",\"dataset\":\"{}\",\"scale\":{},",
                "\"admission_bytes\":{},\"max_concurrent_queries\":{}}}"
            ),
            client_addr,
            http.addr(),
            spec.machines,
            kind.name(),
            spec.dataset.name(),
            spec.scale,
            options.admission_bytes.map_or("null".to_string(), |b| b.to_string()),
            options.max_concurrent_queries.max(1),
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        let (job_tx, job_rx) = mpsc::channel::<ClientJob>();
        // Accept loop + one handler thread per connection. The threads are
        // deliberately detached: they block in socket reads, the process
        // exits right after the serve loop ends, and a half-served client
        // at shutdown sees a closed connection either way.
        std::thread::Builder::new()
            .name("rads-serve-accept".to_string())
            .spawn(move || {
                for stream in client_listener.incoming() {
                    let Ok(stream) = stream else { break };
                    let job_tx = job_tx.clone();
                    let spawned = std::thread::Builder::new()
                        .name("rads-serve-client".to_string())
                        .spawn(move || serve_client(stream, &job_tx));
                    if spawned.is_err() {
                        break;
                    }
                }
            })
            .map_err(|e| format!("cannot spawn client accept thread: {e}"))?;

        let shared = Arc::new(ServeShared {
            spec: spec.clone(),
            partitioned,
            node,
            ctx,
            daemon,
            stats: stats.clone(),
            plan_cache: PlanCache::new(),
            base_budget: startup_budget(spec),
            query_timeout: options.query_timeout,
            scheduler: QueryScheduler::new(
                options.max_concurrent_queries,
                options.admission_bytes,
            ),
            prev_wire: StdMutex::new(stats.snapshot()),
            ledger: EpochLedger::new(),
            next_query_id: AtomicU64::new(0),
        });
        // the serve loop: every query gets its own thread; the scheduler
        // inside ServeShared::execute does the actual concurrency/byte
        // gating, so submission order still decides who waits
        let mut inflight: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while let Ok(job) = job_rx.recv() {
            inflight.retain(|handle| !handle.is_finished());
            match job.op {
                ClientOp::Query { pattern, budget } => {
                    let shared = shared.clone();
                    let handle = std::thread::Builder::new()
                        .name("rads-serve-query".to_string())
                        .spawn(move || {
                            let reply = shared.execute(&pattern, budget);
                            let _ = job.reply.send(reply);
                        })
                        .map_err(|e| format!("cannot spawn query thread: {e}"))?;
                    inflight.push(handle);
                }
                ClientOp::Shutdown => {
                    let _ = job.reply.send(QueryReply::ShutdownAck);
                    break;
                }
            }
        }
        // drain in-flight queries before ordering the fabric down: a query
        // mid-run on the workers must not see its coordinator vanish
        for handle in inflight {
            let _ = handle.join();
        }
        let shared = Arc::try_unwrap(shared)
            .map_err(|_| "a query thread is still holding the serve state".to_string())?;
        shared.node.broadcast_shutdown();
        shared.node.finish_shutdown();
        drop(http);
        Ok(())
    })();

    // reap the workers (they received the shutdown order) — same contract
    // as the one-shot coordinator
    let result = serve.and_then(|()| {
        let reap_deadline = Instant::now() + Duration::from_secs(10);
        for (machine, child) in children.iter_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => break,
                    Ok(Some(status)) => {
                        return Err(format!("serve worker {machine} exited with {status}"))
                    }
                    Ok(None) if Instant::now() >= reap_deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(format!("serve worker {machine} ignored shutdown"));
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(e) => return Err(format!("waiting for serve worker {machine}: {e}")),
                }
            }
        }
        Ok(())
    });
    if result.is_err() {
        for (_, child) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    if let Some(PeerAddr::Uds(path)) = addrs.first() {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    result
}

/// Serves one client connection: a stream of `Query` frames, each answered
/// with a `QueryResult` frame echoing the correlation id. The connection
/// closes after a shutdown op, a malformed frame, or the client hanging up.
///
/// Queries block their own connection until answered (the classic
/// request/reply contract); clients wanting overlap open several
/// connections — `rads-query --concurrency N` does exactly that.
fn serve_client(mut stream: std::net::TcpStream, job_tx: &mpsc::Sender<ClientJob>) {
    loop {
        let frame = match read_message(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        if frame.kind != FrameKind::Query {
            return;
        }
        let reply = match decode_client_op(&frame.payload) {
            Ok(op) => {
                // a shutdown op closes the connection even when the serve
                // loop is already gone and the reply degraded to an error
                let is_shutdown = op == ClientOp::Shutdown;
                let (reply_tx, reply_rx) = mpsc::channel();
                let gone = QueryReply::Error {
                    query_id: 0,
                    message: "server is shutting down".to_string(),
                };
                let reply = if job_tx.send(ClientJob { op, reply: reply_tx }).is_ok() {
                    reply_rx.recv().unwrap_or(gone)
                } else {
                    gone
                };
                if is_shutdown {
                    QueryReply::ShutdownAck
                } else {
                    reply
                }
            }
            Err(e) => QueryReply::Error { query_id: 0, message: format!("bad request: {e}") },
        };
        let done = matches!(reply, QueryReply::ShutdownAck);
        if write_message(
            &mut stream,
            FrameKind::QueryResult,
            frame.correlation,
            QueryId::SOLO,
            &encode_query_reply(&reply),
        )
        .is_err()
            || done
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// client side (the rads-query binary's engine room)
// ---------------------------------------------------------------------------

/// Sends one [`ClientOp`] to a serve coordinator at `addr`
/// (`host:port` of the client front door) and returns its reply.
pub fn client_round_trip(addr: &str, op: &ClientOp, correlation: u64) -> Result<QueryReply, String> {
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_message(&mut stream, FrameKind::Query, correlation, QueryId::SOLO, &encode_client_op(op))
        .map_err(|e| format!("cannot send request: {e}"))?;
    let frame = read_message(&mut stream)
        .map_err(|e| format!("cannot read reply: {e}"))?
        .ok_or("server closed the connection without replying")?;
    if frame.kind != FrameKind::QueryResult {
        return Err(format!("unexpected reply frame {:?}", frame.kind));
    }
    if frame.correlation != correlation {
        return Err(format!(
            "reply correlation {} does not echo request {correlation}",
            frame.correlation
        ));
    }
    decode_query_reply(&frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rads_graph::generators::ring_lattice;
    use rads_partition::{BfsPartitioner, Partitioner};

    fn small_partitioned() -> Arc<PartitionedGraph> {
        let g = ring_lattice(16, 0);
        Arc::new(PartitionedGraph::build(&g, BfsPartitioner.partition(&g, 2)))
    }

    #[test]
    fn client_op_roundtrip() {
        for op in [
            ClientOp::Query { pattern: "q1".to_string(), budget: None },
            ClientOp::Query { pattern: "house with end vertex".to_string(), budget: Some(1 << 20) },
            ClientOp::Shutdown,
        ] {
            assert_eq!(decode_client_op(&encode_client_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn query_reply_roundtrip() {
        for reply in [
            QueryReply::Ok {
                query_id: 11,
                count: 42,
                elapsed_us: 1234,
                plan_cache_hit: true,
                per_machine: vec![(0, 30), (1, 12)],
                metrics_json: "{\"metrics\":[]}".to_string(),
            },
            QueryReply::Rejected { query_id: 12, estimate: 1 << 40, limit: 1 << 20 },
            QueryReply::Error { query_id: 0, message: "unknown query \"q9\"".to_string() },
            QueryReply::ShutdownAck,
        ] {
            assert_eq!(decode_query_reply(&encode_query_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn query_report_roundtrip() {
        let summary = MachineSummary {
            machine: 3,
            embeddings: 77,
            sme_embeddings: 70,
            wire_bytes: 1024,
            wire_messages: 6,
            fetch_wait_demand_us: 12,
            fetch_wait_prefetch_us: 3,
            elapsed_ms: 1.5,
            rpc_retries: 0,
            reconnects: 0,
        };
        let buf = encode_query_report(9, &summary, true);
        assert_eq!(buf.len(), QUERY_REPORT_BYTES);
        let (id, decoded, hit) = decode_query_report(&buf).unwrap();
        assert_eq!(id, 9);
        assert!(hit);
        assert_eq!(decoded, summary);
    }

    #[test]
    fn serve_daemon_is_quiet_between_queries() {
        let daemon = ServeDaemon::new(small_partitioned(), 0);
        assert_eq!(
            daemon.handle(1, Envelope::solo(Request::CheckRegionGroups)),
            Response::RegionGroupCount(0)
        );
        assert_eq!(
            daemon.handle(1, Envelope::solo(Request::ShareRegionGroup)),
            Response::RegionGroup(None)
        );
        // no job queue: a stray Query RPC is unsupported, not silently lost
        let q = Request::Query { id: 1, pattern: "q1".to_string(), budget: None };
        assert_eq!(daemon.handle(1, Envelope::solo(q)), Response::Unsupported);
    }

    #[test]
    fn serve_daemon_routes_by_the_envelopes_query_id() {
        let partitioned = small_partitioned();
        let daemon = ServeDaemon::new(partitioned.clone(), 0);
        let queue_a = new_group_queue();
        queue_a.lock().push_back(vec![1, 2, 3]);
        let queue_b = new_group_queue();
        queue_b.lock().push_back(vec![7]);
        queue_b.lock().push_back(vec![8]);
        daemon.install(QueryId(5), Arc::new(RadsDaemon::new(partitioned.clone(), 0, queue_a)));
        daemon.install(QueryId(6), Arc::new(RadsDaemon::new(partitioned, 0, queue_b)));
        assert_eq!(daemon.active_queries(), 2);
        let check = |q: u64| {
            daemon.handle(1, Envelope::new(QueryId(q), 0, Request::CheckRegionGroups))
        };
        // each query sees its own queue; an unknown id sees an empty one
        assert_eq!(check(5), Response::RegionGroupCount(1));
        assert_eq!(check(6), Response::RegionGroupCount(2));
        assert_eq!(check(99), Response::RegionGroupCount(0));
        assert_eq!(
            daemon.handle(1, Envelope::new(QueryId(5), 1, Request::ShareRegionGroup)),
            Response::RegionGroup(Some(vec![1, 2, 3]))
        );
        // sharing from query 5 did not touch query 6's queue
        assert_eq!(check(5), Response::RegionGroupCount(0));
        assert_eq!(check(6), Response::RegionGroupCount(2));
        assert_eq!(
            daemon.handle(1, Envelope::new(QueryId(99), 0, Request::ShareRegionGroup)),
            Response::RegionGroup(None)
        );
        daemon.clear(QueryId(5));
        assert_eq!(check(5), Response::RegionGroupCount(0));
        assert_eq!(check(6), Response::RegionGroupCount(2));
        daemon.clear(QueryId(6));
        assert_eq!(daemon.active_queries(), 0);
    }

    #[test]
    fn serve_daemon_enqueues_query_jobs_and_acks() {
        let (tx, rx) = mpsc::channel();
        let daemon = ServeDaemon::with_job_queue(small_partitioned(), 1, tx);
        let q = Request::Query { id: 7, pattern: "q1".to_string(), budget: Some(64) };
        assert_eq!(daemon.handle(0, Envelope::new(QueryId(7), 0, q)), Response::Ack);
        let job = rx.try_recv().unwrap();
        assert_eq!(job, QueryJob { id: 7, pattern: "q1".to_string(), budget: Some(64) });
        // partition-backed requests still served while idle
        match daemon.handle(0, Envelope::solo(Request::FetchVertices(vec![0]))) {
            Response::Adjacency(lists) => assert_eq!(lists.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheduler_rejects_only_impossible_estimates() {
        let scheduler = QueryScheduler::new(4, Some(1000));
        assert_eq!(scheduler.admit(1001), Err((1001, 1000)));
        assert!(scheduler.admit(1000).is_ok());
        scheduler.release(1000);
    }

    #[test]
    fn scheduler_enforces_the_joint_byte_budget() {
        let scheduler = Arc::new(QueryScheduler::new(4, Some(1000)));
        assert!(scheduler.admit(600).is_ok());
        // 600 + 600 > 1000: the second admission must wait for the release
        let waiter = {
            let scheduler = scheduler.clone();
            std::thread::spawn(move || {
                scheduler.admit(600).expect("fits after release");
                scheduler.release(600);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "joint budget ignored: 1200 in flight under a 1000 cap");
        scheduler.release(600);
        waiter.join().expect("waiter admitted after release");
    }

    #[test]
    fn scheduler_enforces_the_concurrency_cap() {
        let scheduler = Arc::new(QueryScheduler::new(1, None));
        assert!(scheduler.admit(0).is_ok());
        let waiter = {
            let scheduler = scheduler.clone();
            std::thread::spawn(move || {
                scheduler.admit(0).expect("slot after release");
                scheduler.release(0);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!waiter.is_finished(), "two queries in flight under --max-concurrent-queries 1");
        scheduler.release(0);
        waiter.join().expect("waiter admitted after release");
    }

    #[test]
    fn traffic_delta_subtracts_per_field() {
        let prev = TrafficSnapshot {
            messages: 10,
            total_bytes: 1000,
            control_bytes: 100,
            per_machine_bytes: vec![600, 400],
        };
        let now = TrafficSnapshot {
            messages: 15,
            total_bytes: 1500,
            control_bytes: 120,
            per_machine_bytes: vec![900, 600],
        };
        let delta = traffic_delta(&now, &prev);
        assert_eq!(delta.messages, 5);
        assert_eq!(delta.total_bytes, 500);
        assert_eq!(delta.control_bytes, 20);
        assert_eq!(delta.per_machine_bytes, vec![300, 200]);
    }
}
