//! Regenerates every table and figure of the paper's evaluation on the
//! synthetic dataset suite.
//!
//! ```text
//! experiments [EXPERIMENT..] [--scale S] [--machines N] [--seed K] [--out FILE]
//!             [--reps R] [--budget BYTES]
//! experiments validate [--out FILE] [--trace FILE] [--metrics FILE]
//!
//! EXPERIMENT: all | table1 | table2 | fig8 | fig9 | fig10 | fig11 | fig12
//!           | fig13 | table3 | table4 | fig15 | robustness | ablation
//!           | speedup | intersect | sockets | overlap | observe
//! ```
//!
//! `validate` is the schema gate: it parses the committed
//! `BENCH_results.json` (or `--out FILE`) and exits nonzero if the file is
//! missing, malformed, empty, or any row lacks a required field — so
//! experiment-format drift is caught at PR time, not when a later analysis
//! breaks. With `--trace FILE` and/or `--metrics FILE` it instead validates
//! observability artifacts written by `rads-node --trace-out` /
//! `--metrics-out` (`validate_trace_json` checks every span closed, parent
//! ids resolving and parent-before-child timestamps;
//! `validate_metrics_json` checks metric types and histogram-bucket
//! consistency). `observe` measures the overhead of enabling tracing +
//! metrics on identical runs, asserting bit-identical embedding counts.
//! `sockets` runs the same queries over the in-process transport
//! and over a real 4-process Unix-domain-socket cluster (spawning the
//! `rads-node` binary built next to this one), asserts count equality and
//! records simulated-model bytes vs real framed wire bytes side by side.
//! `overlap` compares the serial and async round drivers on identical
//! inputs, once over a simulated 4 ms-RTT network and once on a real
//! 4-process UDS cluster, asserting count equality between the drivers and
//! recording the wall-clock the async scatter/harvest buys.
//!
//! `--reps` controls how many timed repetitions the `intersect` experiment
//! averages per kernel (default 3; CI smoke runs use 1 with a small
//! `--scale`). `--budget` overrides the governor budget `Φ` of the
//! `robustness` experiment (accepts `65536`, `64k`, `4m`, …; every RADS run
//! additionally honours the `RADS_MEMORY_BUDGET` environment variable via
//! `RadsConfig::default`). The robustness rows are self-verifying — the run
//! aborts unless the workload defeats the static estimate by ≥ 10x *and*
//! the governor holds the peak under `Φ` — so an overridden `Φ` must stay
//! between roughly twice the largest single-candidate footprint (≈ 16 KiB)
//! and a tenth of the unguarded peak (≈ 100 KiB at the default scales).
//!
//! The defaults (`--scale 0.12 --machines 4`) keep a full `all` run within a
//! few minutes on a laptop. Larger scales sharpen the separation between the
//! systems but the qualitative shape is already visible at the default.
//!
//! Measurement-shaped experiments (the performance figures and `speedup`)
//! additionally emit machine-readable rows; when any were produced, the
//! whole `BENCH_results.json` (overridable with `--out`) is rewritten with
//! exactly this invocation's rows — run the experiments you want recorded
//! together in one invocation.

use std::time::Duration;

use rads_bench::{
    ablations, clique_queries_figure, compression_table, governor_robustness, intersect_speedup,
    observe_overhead, overlap_speedup, parallel_speedup, performance_figure,
    plan_effectiveness_figure, robustness_experiment, scalability_figure, table1, table2,
    write_results_json, BenchRecord, System,
};
use rads_datasets::{DatasetKind, Scale};
use rads_runtime::NetworkConfig;

const KNOWN_EXPERIMENTS: &[&str] = &[
    "all", "table1", "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table3",
    "table4", "fig15", "robustness", "ablation", "speedup", "intersect", "sockets", "overlap",
    "observe", "validate",
];

struct Options {
    experiments: Vec<String>,
    scale: Scale,
    machines: usize,
    seed: u64,
    out: std::path::PathBuf,
    reps: u32,
    budget: usize,
    trace: Option<std::path::PathBuf>,
    metrics: Option<std::path::PathBuf>,
}

/// Exits with an error message on stderr (malformed command lines must not
/// silently fall back to defaults).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: experiments [EXPERIMENT..] [--scale S] [--machines N] [--seed K] [--out FILE] [--reps R] [--budget BYTES]"
    );
    std::process::exit(2);
}

/// Parses the value of `flag`, exiting with an error when it is missing or
/// malformed.
fn parse_flag_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> T {
    let Some(raw) = args.next() else {
        usage_error(&format!("{flag} requires a value"));
    };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => usage_error(&format!("invalid value {raw:?} for {flag}")),
    }
}

fn parse_args() -> Options {
    let mut experiments = Vec::new();
    let mut scale = 0.12f64;
    let mut machines = 4usize;
    let mut seed = 42u64;
    let mut out = std::path::PathBuf::from("BENCH_results.json");
    let mut reps = 3u32;
    let mut budget = GOVERNOR_BUDGET;
    let mut trace = None;
    let mut metrics = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace = Some(parse_flag_value(&mut args, "--trace")),
            "--metrics" => metrics = Some(parse_flag_value(&mut args, "--metrics")),
            "--scale" => scale = parse_flag_value(&mut args, "--scale"),
            "--machines" => machines = parse_flag_value(&mut args, "--machines"),
            "--seed" => seed = parse_flag_value(&mut args, "--seed"),
            "--out" => out = parse_flag_value(&mut args, "--out"),
            "--reps" => reps = parse_flag_value(&mut args, "--reps"),
            "--budget" => {
                let raw: String = parse_flag_value(&mut args, "--budget");
                match rads_core::memory::parse_bytes(&raw) {
                    Some(bytes) => budget = bytes,
                    None => usage_error(&format!("invalid byte size {raw:?} for --budget")),
                }
            }
            "--help" | "-h" => {
                println!("usage: experiments [EXPERIMENT..] [--scale S] [--machines N] [--seed K] [--out FILE] [--reps R] [--budget BYTES]");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown flag {other:?}"));
            }
            other if KNOWN_EXPERIMENTS.contains(&other) => experiments.push(other.to_string()),
            other => usage_error(&format!(
                "unknown experiment {other:?} (known: {})",
                KNOWN_EXPERIMENTS.join(", ")
            )),
        }
    }
    if !scale.is_finite() || scale <= 0.0 {
        usage_error(&format!("--scale must be positive, got {scale}"));
    }
    if machines == 0 {
        usage_error("--machines must be at least 1");
    }
    if reps == 0 {
        usage_error("--reps must be at least 1");
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Options { experiments, scale: Scale(scale), machines, seed, out, reps, budget, trace, metrics }
}

const STANDARD_QUERIES: [&str; 8] = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"];
const PLAN_QUERIES: [&str; 5] = ["q4", "q5", "q6", "q7", "q8"];

/// `Φ` of the governor robustness experiment: small enough that the hub-pod
/// aggregate (≈ 1 MiB unguarded) overflows it by ≥ 10x, large enough that a
/// single pod candidate's subtree (≈ 7 KiB) stays within the governor's
/// `Φ/2` single-unit contract with ample margin.
const GOVERNOR_BUDGET: usize = 64 * 1024;

/// The `validate` subcommand. Default target: the committed results file
/// (`--out`), failing on schema drift. With `--trace` / `--metrics` it
/// validates those observability artifacts instead.
fn run_validate(opts: &Options) -> ! {
    let read = |path: &std::path::Path| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(1);
        })
    };
    let report = |path: &std::path::Path, what: &str, outcome: Result<usize, String>| {
        match outcome {
            Ok(n) => println!("{}: {n} {what}, schema OK", path.display()),
            Err(e) => {
                eprintln!("error: {} failed schema validation: {e}", path.display());
                std::process::exit(1);
            }
        }
    };
    if opts.trace.is_none() && opts.metrics.is_none() {
        report(&opts.out, "result rows", rads_bench::validate_results_json(&read(&opts.out)));
        std::process::exit(0);
    }
    if let Some(path) = &opts.trace {
        report(path, "spans", rads_bench::validate_trace_json(&read(path)));
    }
    if let Some(path) = &opts.metrics {
        report(path, "metrics", rads_bench::validate_metrics_json(&read(path)));
    }
    std::process::exit(0);
}

fn main() {
    let opts = parse_args();
    if opts.experiments.iter().any(|e| e == "validate") {
        if opts.experiments.len() > 1 {
            usage_error("validate cannot be combined with experiments");
        }
        run_validate(&opts);
    }
    let want = |name: &str| {
        opts.experiments.iter().any(|e| e == name || e == "all")
    };
    let mut records: Vec<BenchRecord> = Vec::new();

    if want("table1") {
        println!("== Table 1: dataset profiles (scale {:.2}) ==", opts.scale.0);
        println!("dataset\t|V|\t|E|\tavg degree\tdiameter");
        for p in table1(opts.scale, opts.seed) {
            println!(
                "{}\t{}\t{}\t{:.2}\t{}",
                p.name, p.vertices, p.edges, p.average_degree, p.diameter
            );
        }
        println!();
    }

    if want("table2") {
        println!("== Table 2: data graph size vs Crystal clique-index size ==");
        println!("dataset\tgraph bytes\tindex bytes\tratio");
        for (name, graph_bytes, index_bytes) in table2(opts.scale, opts.seed) {
            println!(
                "{}\t{}\t{}\t{:.2}x",
                name,
                graph_bytes,
                index_bytes,
                index_bytes as f64 / graph_bytes.max(1) as f64
            );
        }
        println!();
    }

    let perf = |tag: &str, fig: &str, kind: DatasetKind, records: &mut Vec<BenchRecord>| {
        println!(
            "== {fig}: performance on {} ({} machines, scale {:.2}) ==",
            kind.name(),
            opts.machines,
            opts.scale.0
        );
        println!("dataset\tquery\tsystem\tmachines\tembeddings\ttime\tcomm\tpeak-intermediate");
        let rows = performance_figure(
            kind,
            opts.scale,
            opts.machines,
            opts.seed,
            &System::all(),
            &STANDARD_QUERIES,
        );
        for row in rows {
            println!("{}", row.render());
            records.push(BenchRecord::from_measurement(tag, &row));
        }
        println!();
    };
    if want("fig8") {
        perf("fig8", "Figure 8", DatasetKind::RoadNet, &mut records);
    }
    if want("fig9") {
        perf("fig9", "Figure 9", DatasetKind::Dblp, &mut records);
    }
    if want("fig10") {
        perf("fig10", "Figure 10", DatasetKind::LiveJournal, &mut records);
    }
    if want("fig11") {
        perf("fig11", "Figure 11", DatasetKind::Uk2002, &mut records);
    }

    if want("fig12") {
        println!("== Figure 12: scalability ratio (baseline 5 machines) ==");
        println!("dataset\tsystem\tmachines\tspeedup-vs-5");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            // the paper omits the failing systems on the two large datasets
            let systems: Vec<System> = if matches!(kind, DatasetKind::LiveJournal | DatasetKind::Uk2002) {
                vec![System::Crystal, System::Rads]
            } else {
                System::all().to_vec()
            };
            let rows = scalability_figure(
                kind,
                opts.scale,
                &[5, 10, 15],
                opts.seed,
                &systems,
                &["q1", "q2", "q4"],
            );
            for (system, machines, ratio) in rows {
                println!("{}\t{}\t{}\t{:.2}", kind.name(), system, machines, ratio);
            }
        }
        println!();
    }

    if want("fig13") {
        println!("== Figure 13: execution-plan effectiveness (RanS / RanM / RADS) ==");
        println!("dataset\tquery\tplanner\ttime(ms)");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            for (query, planner, ms) in plan_effectiveness_figure(
                kind,
                opts.scale,
                opts.machines,
                opts.seed,
                &PLAN_QUERIES,
                3,
            ) {
                println!("{}\t{}\t{}\t{:.1}", kind.name(), query, planner, ms);
            }
        }
        println!();
    }

    if want("table3") {
        println!("== Table 3: intermediate-result compression on RoadNet ==");
        println!("query\tEL bytes\tET bytes\tratio");
        for (query, el, et) in compression_table(
            DatasetKind::RoadNet,
            opts.scale,
            opts.machines,
            opts.seed,
            &["q1", "q2", "q3", "q4", "q5", "q6"],
        ) {
            println!("{}\t{}\t{}\t{:.2}x", query, el, et, el as f64 / et.max(1) as f64);
        }
        println!();
    }

    if want("table4") {
        println!("== Table 4: intermediate-result compression on DBLP ==");
        println!("query\tEL bytes\tET bytes\tratio");
        for (query, el, et) in compression_table(
            DatasetKind::Dblp,
            opts.scale,
            opts.machines,
            opts.seed,
            &STANDARD_QUERIES,
        ) {
            println!("{}\t{}\t{}\t{:.2}x", query, el, et, el as f64 / et.max(1) as f64);
        }
        println!();
    }

    if want("fig15") {
        println!("== Figure 15: clique-heavy queries (SEED / Crystal / RADS) ==");
        println!("dataset\tquery\tsystem\tmachines\tembeddings\ttime\tcomm\tpeak-intermediate");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            for row in clique_queries_figure(kind, opts.scale, opts.machines, opts.seed) {
                println!("{}", row.render());
                records.push(BenchRecord::from_measurement("fig15", &row));
            }
        }
        println!();
    }

    if want("robustness") {
        println!("== Robustness (Exp-4 style): peak per-machine intermediate state under a memory cap ==");
        let cap = 256 * 1024; // scaled-down stand-in for the paper's 8 GB cap
        println!("dataset\tsystem\tpeak bytes\twithin {cap} B cap");
        // LiveJournal only: the join-based baselines need many minutes for
        // q6 on the denser UK2002 stand-in even at smoke scales — exactly
        // the blow-up this experiment demonstrates, but not worth the wait.
        for kind in [DatasetKind::LiveJournal] {
            for (system, peak, ok) in
                robustness_experiment(kind, opts.scale, opts.machines, opts.seed, "q6", cap)
            {
                println!("{}\t{}\t{}\t{}", kind.name(), system, peak, if ok { "yes" } else { "NO" });
            }
        }
        println!();

        println!("== Robustness: runtime memory governor on the adversarial hub workload (q2, Φ = {} B) ==", opts.budget);
        println!("dataset\tsystem\tworkers\tembeddings\tpeak bytes\tΦ bytes\tpeak/Φ");
        // `governor_robustness` asserts internally: counts equal ground
        // truth everywhere, peak ≤ Φ with the governor, peak ≥ 10 Φ without
        // (the workload defeats the static estimate by an order of
        // magnitude).
        let rows = governor_robustness(opts.scale, opts.seed, opts.budget, &[1, 4]);
        for r in &rows {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{:.2}x",
                r.dataset,
                r.system,
                r.workers,
                r.embeddings,
                r.peak_tracked_bytes,
                r.budget_bytes,
                r.peak_tracked_bytes as f64 / r.budget_bytes.max(1) as f64,
            );
        }
        records.extend(rows);
        println!();
    }

    if want("ablation") {
        println!("== Ablations: RADS design choices (query q4) ==");
        println!("dataset\tvariant\ttime(ms)\tcomm(MB)");
        for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
            for (label, ms, mb) in ablations(kind, opts.scale, opts.machines, opts.seed, "q4") {
                println!("{}\t{}\t{:.1}\t{:.4}", kind.name(), label, ms, mb);
            }
        }
        println!();
    }

    if want("speedup") {
        println!(
            "== Speedup: intra-machine worker pool on LiveJournal ({} machines, scale {:.2}, simulated 4 ms-RTT network) ==",
            opts.machines, opts.scale.0
        );
        println!("dataset\tquery\tworkers\tembeddings\ttime(ms)\tcomm(MB)\tspeedup-vs-1");
        // A latency-bearing network model (a 4 ms round trip, i.e. a cloud
        // or cross-rack link rather than a tuned LAN): on a zero-cost
        // network this single-process simulation cannot show the
        // communication/computation overlap the pool buys, because compute
        // itself does not parallelize when the host has fewer cores than
        // simulated machines x workers.
        let network = NetworkConfig {
            latency_per_message: Duration::from_millis(2),
            bytes_per_second: Some(100 * 1024 * 1024),
        };
        let rows = parallel_speedup(
            DatasetKind::LiveJournal,
            opts.scale,
            opts.machines,
            opts.seed,
            network,
            64 * 1024,
            &["q5", "q8"],
            &[1, 4],
        );
        let mut base_ms = 1.0;
        for r in &rows {
            if r.workers == 1 {
                base_ms = r.elapsed_ms;
            }
            println!(
                "{}\t{}\t{}\t{}\t{:.1}\t{:.4}\t{:.2}x",
                r.dataset,
                r.query,
                r.workers,
                r.embeddings,
                r.elapsed_ms,
                r.bytes_shipped as f64 / (1024.0 * 1024.0),
                base_ms / r.elapsed_ms.max(1e-6),
            );
        }
        records.extend(rows);
        println!();
    }

    if want("intersect") {
        println!(
            "== Intersect: candidate-generation kernels on LiveJournal (single thread, scale {:.2}, {} reps) ==",
            opts.scale.0, opts.reps
        );
        println!("dataset\tquery\tkernel\tembeddings\ttime(ms)\temb/s\tspeedup-vs-probe");
        let rows = intersect_speedup(
            DatasetKind::LiveJournal,
            opts.scale,
            opts.machines,
            opts.seed,
            &["q5", "q8", "c1", "c2", "c3", "c4"],
            &[1, 2, 4, 8],
            opts.reps,
        );
        // intersect_speedup emits a (probe, intersect) pair per query
        for pair in rows.chunks(2) {
            let probe_ms = pair[0].elapsed_ms;
            assert_eq!(pair[0].system, "probe-kernel");
            for r in pair {
                println!(
                    "{}\t{}\t{}\t{}\t{:.1}\t{:.0}\t{:.2}x",
                    r.dataset,
                    r.query,
                    r.system,
                    r.embeddings,
                    r.elapsed_ms,
                    r.embeddings_per_sec,
                    probe_ms / r.elapsed_ms.max(1e-6),
                );
            }
        }
        records.extend(rows);
        println!();
    }

    if want("sockets") {
        let explicit = opts.experiments.iter().any(|e| e == "sockets");
        match rads_bench::procs::sibling_node_binary() {
            Ok(node_binary) => {
                println!(
                    "== Sockets: real {}-process UDS cluster vs the simulated transport (scale {:.2}) ==",
                    opts.machines, opts.scale.0
                );
                println!("dataset\tquery\tsystem\tembeddings\ttime(ms)\tbytes shipped");
                // asserts internally that the multi-process cluster's counts
                // equal the in-process transport's on every query
                let rows = rads_bench::procs::socket_vs_simulated(
                    DatasetKind::LiveJournal,
                    opts.scale,
                    opts.machines,
                    opts.seed,
                    &["q1", "q5"],
                    &node_binary,
                    Duration::from_secs(300),
                )
                .unwrap_or_else(|e| {
                    eprintln!("error: sockets experiment failed: {e}");
                    std::process::exit(1);
                });
                for pair in rows.chunks(2) {
                    assert_eq!(pair[0].system, "RADS-sim");
                    for r in pair {
                        println!(
                            "{}\t{}\t{}\t{}\t{:.1}\t{}",
                            r.dataset, r.query, r.system, r.embeddings, r.elapsed_ms,
                            r.bytes_shipped,
                        );
                    }
                }
                records.extend(rows);
                println!();
            }
            // `all` runs stay usable without a pre-built rads-node; asking
            // for the experiment by name makes the missing binary an error
            Err(e) if explicit => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            Err(e) => println!("skipping sockets experiment: {e}\n"),
        }
    }

    if want("overlap") {
        println!(
            "== Overlap: serial vs async round driver on LiveJournal ({} machines, scale {:.2}, simulated 4 ms-RTT network) ==",
            opts.machines, opts.scale.0
        );
        println!("dataset\tquery\tsystem\tembeddings\ttime(ms)\tbytes shipped\tspeedup-vs-serial");
        // The same network model as `speedup`: the serial driver pays one
        // round trip per fetchV chunk in sequence, the async driver scatters
        // all chunks of a round first, so their 4 ms windows overlap.
        let network = NetworkConfig {
            latency_per_message: Duration::from_millis(2),
            bytes_per_second: Some(100 * 1024 * 1024),
        };
        let sim_rows = overlap_speedup(
            DatasetKind::LiveJournal,
            opts.scale,
            opts.machines,
            opts.seed,
            network,
            &["q5", "q8"],
            opts.reps,
        );
        let print_pairs = |rows: &[BenchRecord]| {
            for pair in rows.chunks(2) {
                let serial_ms = pair[0].elapsed_ms;
                for r in pair {
                    println!(
                        "{}\t{}\t{}\t{}\t{:.1}\t{}\t{:.2}x",
                        r.dataset,
                        r.query,
                        r.system,
                        r.embeddings,
                        r.elapsed_ms,
                        r.bytes_shipped,
                        serial_ms / r.elapsed_ms.max(1e-6),
                    );
                }
            }
        };
        print_pairs(&sim_rows);
        records.extend(sim_rows);
        println!();

        let explicit = opts.experiments.iter().any(|e| e == "overlap");
        match rads_bench::procs::sibling_node_binary() {
            Ok(node_binary) => {
                // Per-query scales: with no network latency to hide, the
                // async driver's UDS edge is proportional to message count,
                // while compute — which co-scheduled processes cannot
                // overlap — grows faster than messages with scale. q5's
                // message-to-compute ratio is best at the base scale; q8
                // produces two orders of magnitude fewer embeddings, so it
                // needs 2.5x before its engine time clears the cluster's
                // scheduling noise floor (~±10 ms).
                let uds_queries =
                    [("q5", opts.scale), ("q8", Scale(opts.scale.0 * 2.5))];
                let scales = uds_queries
                    .iter()
                    .map(|(q, s)| format!("{q} at scale {:.2}", s.0))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!(
                    "== Overlap: serial vs async round driver on a real {}-process UDS cluster ({scales}) ==",
                    opts.machines
                );
                println!("dataset\tquery\tsystem\tembeddings\ttime(ms)\tbytes shipped\tspeedup-vs-serial");
                let uds_rows = rads_bench::procs::overlap_sockets(
                    DatasetKind::LiveJournal,
                    opts.machines,
                    opts.seed,
                    &uds_queries,
                    &node_binary,
                    Duration::from_secs(300),
                    opts.reps,
                )
                .unwrap_or_else(|e| {
                    eprintln!("error: overlap experiment failed: {e}");
                    std::process::exit(1);
                });
                print_pairs(&uds_rows);
                records.extend(uds_rows);
                println!();
            }
            Err(e) if explicit => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            Err(e) => println!("skipping the overlap experiment's UDS leg: {e}\n"),
        }
    }

    if want("observe") {
        println!(
            "== Observe: observability overhead on LiveJournal ({} machines, scale {:.2}, {} reps) ==",
            opts.machines, opts.scale.0, opts.reps
        );
        println!("dataset\tquery\tsystem\tembeddings\ttime(ms)\toverhead-vs-off");
        // asserts internally that enabling tracing + metrics changes no
        // embedding count; the committed rows pin the ≤2% overhead budget
        let rows = observe_overhead(
            DatasetKind::LiveJournal,
            opts.scale,
            opts.machines,
            opts.seed,
            &["q5", "q8"],
            opts.reps,
        );
        for pair in rows.chunks(2) {
            let off_ms = pair[0].elapsed_ms;
            assert_eq!(pair[0].system, "RADS-obs-off");
            for r in pair {
                println!(
                    "{}\t{}\t{}\t{}\t{:.1}\t{:+.2}%",
                    r.dataset,
                    r.query,
                    r.system,
                    r.embeddings,
                    r.elapsed_ms,
                    (r.elapsed_ms / off_ms.max(1e-6) - 1.0) * 100.0,
                );
            }
        }
        records.extend(rows);
        println!();
    }

    if !records.is_empty() {
        match write_results_json(&opts.out, &records) {
            Ok(()) => println!("wrote {} result rows to {}", records.len(), opts.out.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", opts.out.display());
                std::process::exit(1);
            }
        }
    }
}
