//! Regenerates every table and figure of the paper's evaluation on the
//! synthetic dataset suite.
//!
//! ```text
//! experiments [EXPERIMENT..] [--scale S] [--machines N] [--seed K]
//!
//! EXPERIMENT: all | table1 | table2 | fig8 | fig9 | fig10 | fig11 | fig12
//!           | fig13 | table3 | table4 | fig15 | ablation
//! ```
//!
//! The defaults (`--scale 0.12 --machines 4`) keep a full `all` run within a
//! few minutes on a laptop. Larger scales sharpen the separation between the
//! systems but the qualitative shape is already visible at the default.

use rads_bench::{
    ablations, clique_queries_figure, compression_table, performance_figure,
    plan_effectiveness_figure, robustness_experiment, scalability_figure, table1, table2, System,
};
use rads_datasets::{DatasetKind, Scale};

struct Options {
    experiments: Vec<String>,
    scale: Scale,
    machines: usize,
    seed: u64,
}

fn parse_args() -> Options {
    let mut experiments = Vec::new();
    let mut scale = 0.12;
    let mut machines = 4usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--machines" => machines = args.next().and_then(|v| v.parse().ok()).unwrap_or(machines),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--help" | "-h" => {
                println!("usage: experiments [EXPERIMENT..] [--scale S] [--machines N] [--seed K]");
                std::process::exit(0);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Options { experiments, scale: Scale(scale), machines, seed }
}

const STANDARD_QUERIES: [&str; 8] = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"];
const PLAN_QUERIES: [&str; 5] = ["q4", "q5", "q6", "q7", "q8"];

fn main() {
    let opts = parse_args();
    let want = |name: &str| {
        opts.experiments.iter().any(|e| e == name || e == "all")
    };

    if want("table1") {
        println!("== Table 1: dataset profiles (scale {:.2}) ==", opts.scale.0);
        println!("dataset\t|V|\t|E|\tavg degree\tdiameter");
        for p in table1(opts.scale, opts.seed) {
            println!(
                "{}\t{}\t{}\t{:.2}\t{}",
                p.name, p.vertices, p.edges, p.average_degree, p.diameter
            );
        }
        println!();
    }

    if want("table2") {
        println!("== Table 2: data graph size vs Crystal clique-index size ==");
        println!("dataset\tgraph bytes\tindex bytes\tratio");
        for (name, graph_bytes, index_bytes) in table2(opts.scale, opts.seed) {
            println!(
                "{}\t{}\t{}\t{:.2}x",
                name,
                graph_bytes,
                index_bytes,
                index_bytes as f64 / graph_bytes.max(1) as f64
            );
        }
        println!();
    }

    let perf = |fig: &str, kind: DatasetKind| {
        println!(
            "== {fig}: performance on {} ({} machines, scale {:.2}) ==",
            kind.name(),
            opts.machines,
            opts.scale.0
        );
        println!("dataset\tquery\tsystem\tmachines\tembeddings\ttime\tcomm\tpeak-intermediate");
        let rows = performance_figure(
            kind,
            opts.scale,
            opts.machines,
            opts.seed,
            &System::all(),
            &STANDARD_QUERIES,
        );
        for row in rows {
            println!("{}", row.render());
        }
        println!();
    };
    if want("fig8") {
        perf("Figure 8", DatasetKind::RoadNet);
    }
    if want("fig9") {
        perf("Figure 9", DatasetKind::Dblp);
    }
    if want("fig10") {
        perf("Figure 10", DatasetKind::LiveJournal);
    }
    if want("fig11") {
        perf("Figure 11", DatasetKind::Uk2002);
    }

    if want("fig12") {
        println!("== Figure 12: scalability ratio (baseline 5 machines) ==");
        println!("dataset\tsystem\tmachines\tspeedup-vs-5");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            // the paper omits the failing systems on the two large datasets
            let systems: Vec<System> = if matches!(kind, DatasetKind::LiveJournal | DatasetKind::Uk2002) {
                vec![System::Crystal, System::Rads]
            } else {
                System::all().to_vec()
            };
            let rows = scalability_figure(
                kind,
                opts.scale,
                &[5, 10, 15],
                opts.seed,
                &systems,
                &["q1", "q2", "q4"],
            );
            for (system, machines, ratio) in rows {
                println!("{}\t{}\t{}\t{:.2}", kind.name(), system, machines, ratio);
            }
        }
        println!();
    }

    if want("fig13") {
        println!("== Figure 13: execution-plan effectiveness (RanS / RanM / RADS) ==");
        println!("dataset\tquery\tplanner\ttime(ms)");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            for (query, planner, ms) in plan_effectiveness_figure(
                kind,
                opts.scale,
                opts.machines,
                opts.seed,
                &PLAN_QUERIES,
                3,
            ) {
                println!("{}\t{}\t{}\t{:.1}", kind.name(), query, planner, ms);
            }
        }
        println!();
    }

    if want("table3") {
        println!("== Table 3: intermediate-result compression on RoadNet ==");
        println!("query\tEL bytes\tET bytes\tratio");
        for (query, el, et) in compression_table(
            DatasetKind::RoadNet,
            opts.scale,
            opts.machines,
            opts.seed,
            &["q1", "q2", "q3", "q4", "q5", "q6"],
        ) {
            println!("{}\t{}\t{}\t{:.2}x", query, el, et, el as f64 / et.max(1) as f64);
        }
        println!();
    }

    if want("table4") {
        println!("== Table 4: intermediate-result compression on DBLP ==");
        println!("query\tEL bytes\tET bytes\tratio");
        for (query, el, et) in compression_table(
            DatasetKind::Dblp,
            opts.scale,
            opts.machines,
            opts.seed,
            &STANDARD_QUERIES,
        ) {
            println!("{}\t{}\t{}\t{:.2}x", query, el, et, el as f64 / et.max(1) as f64);
        }
        println!();
    }

    if want("fig15") {
        println!("== Figure 15: clique-heavy queries (SEED / Crystal / RADS) ==");
        println!("dataset\tquery\tsystem\tmachines\tembeddings\ttime\tcomm\tpeak-intermediate");
        for kind in [DatasetKind::RoadNet, DatasetKind::Dblp, DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            for row in clique_queries_figure(kind, opts.scale, opts.machines, opts.seed) {
                println!("{}", row.render());
            }
        }
        println!();
    }

    if want("robustness") {
        println!("== Robustness (Exp-4 style): peak per-machine intermediate state under a memory cap ==");
        let cap = 256 * 1024; // scaled-down stand-in for the paper's 8 GB cap
        println!("dataset\tsystem\tpeak bytes\twithin {cap} B cap");
        for kind in [DatasetKind::LiveJournal, DatasetKind::Uk2002] {
            for (system, peak, ok) in
                robustness_experiment(kind, opts.scale, opts.machines, opts.seed, "q6", cap)
            {
                println!("{}\t{}\t{}\t{}", kind.name(), system, peak, if ok { "yes" } else { "NO" });
            }
        }
        println!();
    }

    if want("ablation") {
        println!("== Ablations: RADS design choices (query q4) ==");
        println!("dataset\tvariant\ttime(ms)\tcomm(MB)");
        for kind in [DatasetKind::Dblp, DatasetKind::LiveJournal] {
            for (label, ms, mb) in ablations(kind, opts.scale, opts.machines, opts.seed, "q4") {
                println!("{}\t{}\t{:.1}\t{:.4}", kind.name(), label, ms, mb);
            }
        }
        println!();
    }
}
