//! `rads-query` — thin client for a resident `rads-node serve` cluster.
//!
//! Connects to the serve coordinator's client front door (the
//! `client_addr` printed on the server's ready line), sends one or more
//! [`ClientOp`]s and prints the [`QueryReply`]s.
//!
//! ```text
//! rads-query --addr 127.0.0.1:4567 --query q5 [--budget 64m] [--json]
//! rads-query --addr 127.0.0.1:4567 --query q5 --concurrency 4 --json
//! rads-query --addr 127.0.0.1:4567 --shutdown
//! ```
//!
//! `--concurrency N` submits the query N times **at once**, each over its
//! own connection (the serve protocol is one request in flight per
//! connection), and prints one reply line per submission — the way to
//! exercise or benchmark the server's concurrent scheduler. Every JSON
//! reply carries the server-assigned `query_id`, so the N replies can be
//! matched to per-query server metrics and trace spans.
//!
//! Exit codes (see `--help`): `0` all submissions answered (or shutdown
//! acknowledged), `1` any error, `2` usage error, `3` no errors but at
//! least one submission rejected by admission control.

use std::process::exit;

use rads_bench::serve::{client_round_trip, ClientOp, QueryReply};

fn fail(message: &str) -> ! {
    eprintln!("rads-query: {message}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         rads-query --addr HOST:PORT --query NAME [--budget BYTES]\n  \
         \x20          [--concurrency N] [--json]\n  \
         rads-query --addr HOST:PORT --shutdown\n\
         \n\
         --concurrency N submits the query N times concurrently, one\n\
         connection per submission, and prints one reply per line.\n\
         \n\
         exit codes:\n  \
         0  every submission was answered (or the shutdown was acknowledged)\n  \
         1  an error (connection failure, server-side query error, ...)\n  \
         2  usage error\n  \
         3  no errors, but admission control rejected at least one submission"
    );
    exit(2);
}

/// Runs one op on its own connection and prints the reply. Returns the
/// submission's exit code (0 ok, 1 error, 3 rejected).
fn submit(addr: &str, op: &ClientOp, correlation: u64, json: bool) -> i32 {
    let reply = match client_round_trip(addr, op, correlation) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("rads-query: {e}");
            return 1;
        }
    };
    match reply {
        QueryReply::Ok { query_id, count, elapsed_us, plan_cache_hit, per_machine, metrics_json } => {
            if json {
                let per: Vec<String> = per_machine
                    .iter()
                    .map(|(machine, embeddings)| format!("[{machine},{embeddings}]"))
                    .collect();
                println!(
                    "{{\"ok\":true,\"query_id\":{query_id},\"count\":{count},\
                     \"elapsed_us\":{elapsed_us},\
                     \"plan_cache_hit\":{plan_cache_hit},\"per_machine\":[{}],\
                     \"metrics\":{metrics_json}}}",
                    per.join(",")
                );
            } else {
                println!(
                    "query {query_id}: count {count} | {:.3} ms | plan cache {}",
                    elapsed_us as f64 / 1000.0,
                    if plan_cache_hit { "hit" } else { "miss" },
                );
                for (machine, embeddings) in &per_machine {
                    println!("  machine {machine}: {embeddings}");
                }
            }
            0
        }
        QueryReply::Rejected { query_id, estimate, limit } => {
            if json {
                println!(
                    "{{\"ok\":false,\"query_id\":{query_id},\"rejected\":true,\
                     \"estimate\":{estimate},\"limit\":{limit}}}"
                );
            } else {
                eprintln!(
                    "query {query_id} rejected: estimated footprint {estimate} bytes \
                     exceeds admission limit {limit} bytes"
                );
            }
            3
        }
        QueryReply::Error { query_id, message } => {
            eprintln!("rads-query: query {query_id}: {message}");
            1
        }
        QueryReply::ShutdownAck => {
            if json {
                println!("{{\"ok\":true,\"shutdown\":true}}");
            } else {
                println!("shutdown acknowledged");
            }
            0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut query: Option<String> = None;
    let mut budget: Option<u64> = None;
    let mut concurrency: usize = 1;
    let mut shutdown = false;
    let mut json = false;

    let mut at = 0;
    while at < args.len() {
        match args[at].as_str() {
            "--addr" => {
                addr = Some(args.get(at + 1).cloned().unwrap_or_else(|| usage()));
                at += 2;
            }
            "--query" => {
                query = Some(args.get(at + 1).cloned().unwrap_or_else(|| usage()));
                at += 2;
            }
            "--budget" => {
                let raw = args.get(at + 1).cloned().unwrap_or_else(|| usage());
                let bytes = rads_core::memory::parse_bytes(&raw)
                    .unwrap_or_else(|| fail(&format!("invalid byte size {raw:?} for --budget")));
                budget = Some(bytes as u64);
                at += 2;
            }
            "--concurrency" => {
                let raw = args.get(at + 1).cloned().unwrap_or_else(|| usage());
                concurrency = raw
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| fail(&format!("--concurrency must be >= 1, got {raw:?}")));
                at += 2;
            }
            "--shutdown" => {
                shutdown = true;
                at += 1;
            }
            "--json" => {
                json = true;
                at += 1;
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    let Some(addr) = addr else { usage() };
    let op = if shutdown {
        if concurrency != 1 {
            fail("--concurrency applies to --query, not --shutdown");
        }
        ClientOp::Shutdown
    } else {
        let Some(pattern) = query else { usage() };
        ClientOp::Query { pattern, budget }
    };

    if concurrency == 1 {
        // the correlation id only has to be echoed back on this connection
        exit(submit(&addr, &op, 1, json));
    }

    // N submissions at once, one connection each; stdout lines stay whole
    // because each println! writes one line atomically
    let handles: Vec<_> = (0..concurrency)
        .map(|slot| {
            let addr = addr.clone();
            let op = op.clone();
            std::thread::spawn(move || submit(&addr, &op, slot as u64 + 1, json))
        })
        .collect();
    let codes: Vec<i32> =
        handles.into_iter().map(|h| h.join().unwrap_or(1)).collect();
    if codes.contains(&1) {
        exit(1);
    }
    if codes.contains(&3) {
        exit(3);
    }
    exit(0);
}
