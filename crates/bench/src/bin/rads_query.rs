//! `rads-query` — thin client for a resident `rads-node serve` cluster.
//!
//! Connects to the serve coordinator's client front door (the
//! `client_addr` printed on the server's ready line), sends one
//! [`ClientOp`] and prints the [`QueryReply`].
//!
//! ```text
//! rads-query --addr 127.0.0.1:4567 --query q5 [--budget 64m] [--json]
//! rads-query --addr 127.0.0.1:4567 --shutdown
//! ```
//!
//! Exit codes: `0` for an answered query (or a shutdown acknowledgement),
//! `3` when admission control rejected the query, `1` for any error.

use std::process::exit;

use rads_bench::serve::{client_round_trip, ClientOp, QueryReply};

fn fail(message: &str) -> ! {
    eprintln!("rads-query: {message}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         rads-query --addr HOST:PORT --query NAME [--budget BYTES] [--json]\n  \
         rads-query --addr HOST:PORT --shutdown"
    );
    exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut query: Option<String> = None;
    let mut budget: Option<u64> = None;
    let mut shutdown = false;
    let mut json = false;

    let mut at = 0;
    while at < args.len() {
        match args[at].as_str() {
            "--addr" => {
                addr = Some(args.get(at + 1).cloned().unwrap_or_else(|| usage()));
                at += 2;
            }
            "--query" => {
                query = Some(args.get(at + 1).cloned().unwrap_or_else(|| usage()));
                at += 2;
            }
            "--budget" => {
                let raw = args.get(at + 1).cloned().unwrap_or_else(|| usage());
                let bytes = rads_core::memory::parse_bytes(&raw)
                    .unwrap_or_else(|| fail(&format!("invalid byte size {raw:?} for --budget")));
                budget = Some(bytes as u64);
                at += 2;
            }
            "--shutdown" => {
                shutdown = true;
                at += 1;
            }
            "--json" => {
                json = true;
                at += 1;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    let Some(addr) = addr else { usage() };
    let op = if shutdown {
        ClientOp::Shutdown
    } else {
        let Some(pattern) = query else { usage() };
        ClientOp::Query { pattern, budget }
    };

    // the correlation id only has to be echoed back on this one connection
    let reply = client_round_trip(&addr, &op, 1).unwrap_or_else(|e| fail(&e));
    match reply {
        QueryReply::Ok { count, elapsed_us, plan_cache_hit, per_machine, metrics_json } => {
            if json {
                let per: Vec<String> = per_machine
                    .iter()
                    .map(|(machine, embeddings)| format!("[{machine},{embeddings}]"))
                    .collect();
                println!(
                    "{{\"ok\":true,\"count\":{count},\"elapsed_us\":{elapsed_us},\
                     \"plan_cache_hit\":{plan_cache_hit},\"per_machine\":[{}],\
                     \"metrics\":{metrics_json}}}",
                    per.join(",")
                );
            } else {
                println!(
                    "count {count} | {:.3} ms | plan cache {}",
                    elapsed_us as f64 / 1000.0,
                    if plan_cache_hit { "hit" } else { "miss" },
                );
                for (machine, embeddings) in &per_machine {
                    println!("  machine {machine}: {embeddings}");
                }
            }
        }
        QueryReply::Rejected { estimate, limit } => {
            if json {
                println!("{{\"ok\":false,\"rejected\":true,\"estimate\":{estimate},\"limit\":{limit}}}");
            } else {
                eprintln!(
                    "rejected: estimated footprint {estimate} bytes exceeds admission limit {limit} bytes"
                );
            }
            exit(3);
        }
        QueryReply::Error { message } => fail(&message),
        QueryReply::ShutdownAck => {
            if json {
                println!("{{\"ok\":true,\"shutdown\":true}}");
            } else {
                println!("shutdown acknowledged");
            }
        }
    }
}
