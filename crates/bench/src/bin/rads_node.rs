//! `rads-node` — run RADS as a real multi-process cluster.
//!
//! One binary, two roles:
//!
//! ```text
//! # coordinator: spawn a whole single-host cluster and print a summary
//! rads-node run --machines 4 --query q5 \
//!     [--transport uds|tcp] [--dataset LiveJournal] [--scale 0.05]
//!     [--seed 42] [--workers N] [--budget BYTES] [--timeout-secs 300] [--json]
//!
//! # worker: one machine of a cluster (normally spawned by `run`)
//! rads-node worker --machine M --machines N --addrs uds:...,uds:... \
//!     --dataset ... --scale ... --seed ... --query ... [--workers N]
//!     [--budget BYTES] [--timeout-secs T]
//! ```
//!
//! `run` allocates the listen addresses (fresh Unix socket paths under the
//! temp dir, or probed loopback TCP ports), spawns `machines - 1` worker
//! processes of **this same executable**, acts as machine 0 itself,
//! collects every worker's result frame under a hard deadline
//! (`--timeout-secs`, default 300 — a deadlocked transport exits nonzero
//! instead of hanging a CI runner), and prints the aggregate: embedding
//! counts per machine and in total, plus the *real framed bytes* each
//! process put on the wire. The last stdout line is a single-line JSON
//! summary (only line with `--json`) that scripts and the CI smoke job
//! parse.
//!
//! `--trace-out FILE` / `--metrics-out FILE` turn on the observability
//! layer (equivalently: `RADS_TRACE=1` / `RADS_METRICS=1`) and write each
//! process's Chrome trace-event JSON and metrics snapshot when the run
//! ends: the coordinator writes `FILE` itself, worker `K` writes
//! `FILE.mK`, and each metrics JSON gets a Prometheus-text sibling at
//! `<path>.prom`. With metrics on, workers also stream their registry
//! snapshots to the coordinator over the wire, and the JSON summary gains
//! a cluster-wide `metrics` object plus per-machine
//! `fetch_wait_demand_us` / `fetch_wait_prefetch_us` columns.
//!
//! Every process rebuilds the deterministic dataset stand-in and
//! partitioning locally from `(dataset, scale, seed, machines)`, so no
//! graph data is shipped; the engine, planner, governor and worker pool are
//! exactly the code the in-process simulator runs — which is why the
//! counts must be (and are, see the `cluster-smoke` CI job) bit-identical
//! across transports.
//!
//! A third role, `serve`, keeps the whole cluster **resident**: the
//! dataset is loaded and partitioned once, then a stream of pattern
//! queries is answered over a TCP client door (the `rads-query` binary is
//! the client) while a Prometheus text page serves the live metrics
//! registry. See [`rads_bench::serve`] for the protocol, the admission
//! semantics and the state-isolation contract between queries.

use std::time::Duration;

use rads_bench::procs::{
    dataset_by_name, run_coordinator, run_worker, ClusterSpec, ClusterSummary, FaultPolicy,
};
use rads_bench::serve::{run_serve_coordinator, run_serve_worker, ServeOptions};
use rads_core::RoundDriver;
use rads_datasets::DatasetKind;
use rads_runtime::{PeerAddr, TransportKind};

const DEFAULT_TIMEOUT_SECS: u64 = 300;

fn usage() -> ! {
    eprintln!(
        "usage:\n  rads-node run --machines N --query Q [--transport uds|tcp] [--dataset D]\n\
         \x20          [--scale S] [--seed K] [--workers W] [--budget BYTES]\n\
         \x20          [--driver serial|async] [--fetch-chunk V] [--no-cache]\n\
         \x20          [--trace-out FILE] [--metrics-out FILE]\n\
         \x20          [--fault-policy fail-fast|recover] [--chaos-kill-ms MS]\n\
         \x20          [--timeout-secs T] [--json]\n\
         \x20 rads-node serve --machines N [--transport uds|tcp] [--dataset D] [--scale S]\n\
         \x20          [--seed K] [--workers W] [--budget BYTES] [--driver serial|async]\n\
         \x20          [--admission-bytes BYTES] [--max-concurrent-queries N]\n\
         \x20          [--client-addr H:P] [--http-addr H:P]\n\
         \x20          [--timeout-secs T]   (resident daemon; query it with rads-query)\n\
         \x20 rads-node worker --machine M --machines N --addrs A0,A1,.. --dataset D\n\
         \x20          --scale S --seed K --query Q [--workers W] [--budget BYTES]\n\
         \x20          [--driver serial|async] [--fetch-chunk V] [--no-cache]\n\
         \x20          [--trace-out FILE] [--metrics-out FILE]\n\
         \x20          [--timeout-secs T]\n\
         \x20 rads-node serve-worker ...   (spawned by serve; worker flags plus\n\
         \x20          --max-concurrent-queries N)"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

struct Flags {
    values: Vec<(String, String)>,
    json: bool,
    no_cache: bool,
}

impl Flags {
    /// Parses `--flag value` pairs (plus the bare `--json` / `--no-cache`
    /// switches).
    fn parse(args: &[String]) -> Flags {
        let mut values = Vec::new();
        let mut json = false;
        let mut no_cache = false;
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if flag == "--json" {
                json = true;
                i += 1;
                continue;
            }
            if flag == "--no-cache" {
                no_cache = true;
                i += 1;
                continue;
            }
            if flag == "--help" || flag == "-h" {
                usage();
            }
            let Some(name) = flag.strip_prefix("--") else {
                eprintln!("error: unexpected argument {flag:?}");
                usage();
            };
            let Some(value) = args.get(i + 1) else {
                eprintln!("error: {flag} requires a value");
                usage();
            };
            values.push((name.to_string(), value.clone()));
            i += 2;
        }
        Flags { values, json, no_cache }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name).map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                fail(&format!("invalid value {raw:?} for --{name}"));
            })
        })
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> T {
        self.parsed(name).unwrap_or_else(|| fail(&format!("--{name} is required")))
    }
}

fn spec_from_flags(flags: &Flags, machines: usize, default_query: Option<&str>) -> ClusterSpec {
    // The artifact flags imply their toggles: pointing a run at an output
    // file is the request to record. (The RADS_TRACE / RADS_METRICS env
    // toggles work too — every worker inherits the coordinator's env.)
    let trace_out = flags.get("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        rads_obs::set_trace_enabled(true);
    }
    let metrics_out = flags.get("metrics-out").map(std::path::PathBuf::from);
    if metrics_out.is_some() {
        rads_obs::set_metrics_enabled(true);
    }
    let dataset_name = flags.get("dataset").unwrap_or("LiveJournal");
    let dataset: DatasetKind = dataset_by_name(dataset_name)
        .unwrap_or_else(|| fail(&format!("unknown dataset {dataset_name:?} (RoadNet | DBLP | LiveJournal | UK2002)")));
    let budget = flags.get("budget").map(|raw| {
        rads_core::memory::parse_bytes(raw)
            .unwrap_or_else(|| fail(&format!("invalid byte size {raw:?} for --budget")))
    });
    let scale: f64 = flags.parsed("scale").unwrap_or(0.05);
    if !scale.is_finite() || scale <= 0.0 {
        fail(&format!("--scale must be positive, got {scale}"));
    }
    ClusterSpec {
        machines,
        dataset,
        scale,
        seed: flags.parsed("seed").unwrap_or(42),
        query: flags
            .get("query")
            .or(default_query)
            .unwrap_or_else(|| fail("--query is required"))
            .to_string(),
        workers: flags.parsed("workers").unwrap_or_else(rads_exec::workers_from_env),
        budget,
        driver: flags
            .get("driver")
            .map(|raw| {
                RoundDriver::parse(raw)
                    .unwrap_or_else(|| fail(&format!("--driver must be serial or async, got {raw:?}")))
            })
            .unwrap_or_else(|| {
                RoundDriver::from_env().unwrap_or_else(|e| fail(&e.to_string()))
            }),
        fetch_chunk: flags.parsed("fetch-chunk").inspect(|&chunk: &usize| {
            if chunk == 0 {
                fail("--fetch-chunk must be at least 1");
            }
        }),
        cache: !flags.no_cache,
        trace_out,
        metrics_out,
        fault_policy: flags
            .get("fault-policy")
            .map(|raw| {
                FaultPolicy::from_env_value(Some(raw))
                    .unwrap_or_else(|_| fail(&format!("--fault-policy must be fail-fast or recover, got {raw:?}")))
            })
            .unwrap_or_else(|| FaultPolicy::from_env().unwrap_or_else(|e| fail(&e.to_string()))),
        chaos_kill_ms: flags.parsed("chaos-kill-ms"),
    }
}

/// Validates every RADS_* environment knob this process (and the workers it
/// spawns, which inherit the environment) will read, so a typo fails the
/// run up front with one clear message instead of a mid-run panic deep in a
/// worker.
fn validate_env() {
    if let Err(e) = TransportKind::from_env() {
        fail(&e.to_string());
    }
    if let Err(e) = RoundDriver::from_env() {
        fail(&e.to_string());
    }
    if let Err(e) = rads_core::memory::MemoryBudget::from_env() {
        fail(&e.to_string());
    }
    if let Err(e) = FaultPolicy::from_env() {
        fail(&e.to_string());
    }
    if let Err(e) = rads_runtime::transport::barrier_timeout_from_env() {
        fail(&e.to_string());
    }
}

fn timeout_from_flags(flags: &Flags) -> Duration {
    Duration::from_secs(flags.parsed::<u64>("timeout-secs").unwrap_or(DEFAULT_TIMEOUT_SECS).max(1))
}

/// Multi-process modes need a real socket transport; the in-process
/// simulator makes no sense when the machines are separate OS processes.
fn socket_transport_from_flags(flags: &Flags) -> TransportKind {
    match flags.get("transport") {
        None => TransportKind::Uds.effective(),
        Some(raw) => match TransportKind::parse(raw) {
            Some(TransportKind::InProcess) | None => {
                fail(&format!("--transport must be uds or tcp, got {raw:?}"))
            }
            Some(kind) => kind.effective(),
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    validate_env();

    match mode.as_str() {
        "run" => {
            let machines: usize = flags.require("machines");
            if machines == 0 {
                fail("--machines must be at least 1");
            }
            let spec = spec_from_flags(&flags, machines, None);
            let kind = socket_transport_from_flags(&flags);
            let timeout = timeout_from_flags(&flags);
            let node_binary = std::env::current_exe()
                .unwrap_or_else(|e| fail(&format!("cannot locate this executable: {e}")));
            if !flags.json {
                println!(
                    "cluster: {} machines over {} | dataset {} scale {} seed {} | query {} | workers {} | driver {}",
                    spec.machines,
                    kind.name(),
                    spec.dataset.name(),
                    spec.scale,
                    spec.seed,
                    spec.query,
                    spec.workers,
                    spec.driver.name(),
                );
            }
            match run_coordinator(&spec, kind, &node_binary, timeout) {
                Ok(summary) => {
                    if !flags.json {
                        print_human(&summary);
                    }
                    println!("{}", summary.to_json());
                }
                Err(e) => fail(&e),
            }
        }
        "serve" => {
            let machines: usize = flags.require("machines");
            if machines == 0 {
                fail("--machines must be at least 1");
            }
            // serve workers receive their queries over the wire; the spec's
            // query field is a placeholder the serve path never reads
            let spec = spec_from_flags(&flags, machines, Some("q1"));
            let kind = socket_transport_from_flags(&flags);
            let admission_bytes = flags.get("admission-bytes").map(|raw| {
                rads_core::memory::parse_bytes(raw).unwrap_or_else(|| {
                    fail(&format!("invalid byte size {raw:?} for --admission-bytes"))
                }) as u64
            });
            let max_concurrent_queries =
                flags.parsed::<usize>("max-concurrent-queries").unwrap_or(1);
            if max_concurrent_queries == 0 {
                fail("--max-concurrent-queries must be at least 1");
            }
            let options = ServeOptions {
                admission_bytes,
                client_addr: flags.get("client-addr").unwrap_or("127.0.0.1:0").to_string(),
                http_addr: flags.get("http-addr").unwrap_or("127.0.0.1:0").to_string(),
                query_timeout: timeout_from_flags(&flags),
                max_concurrent_queries,
            };
            let node_binary = std::env::current_exe()
                .unwrap_or_else(|e| fail(&format!("cannot locate this executable: {e}")));
            if let Err(e) = run_serve_coordinator(&spec, kind, &node_binary, &options) {
                fail(&e);
            }
        }
        "worker" | "serve-worker" => {
            let machines: usize = flags.require("machines");
            let machine: usize = flags.require("machine");
            let spec = spec_from_flags(&flags, machines, None);
            let addr_list: String = flags.require("addrs");
            let addrs: Vec<PeerAddr> = addr_list
                .split(',')
                .map(|raw| PeerAddr::parse(raw).unwrap_or_else(|e| fail(&e)))
                .collect();
            if addrs.len() != machines {
                fail(&format!("--addrs lists {} addresses for {machines} machines", addrs.len()));
            }
            let result = if mode == "serve-worker" {
                let max_concurrent =
                    flags.parsed::<usize>("max-concurrent-queries").unwrap_or(1).max(1);
                run_serve_worker(&spec, machine, addrs, max_concurrent)
            } else {
                run_worker(&spec, machine, addrs, timeout_from_flags(&flags))
            };
            if let Err(e) = result {
                fail(&e);
            }
        }
        other => {
            eprintln!("error: unknown mode {other:?}");
            usage();
        }
    }
}

fn print_human(summary: &ClusterSummary) {
    println!("machine\tembeddings\tsme\twire bytes\twire msgs\tengine ms");
    for m in &summary.per_machine {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.1}",
            m.machine, m.embeddings, m.sme_embeddings, m.wire_bytes, m.wire_messages, m.elapsed_ms
        );
    }
    println!(
        "total\t{} embeddings\t{} wire bytes\t{} requests\t{:.1} ms",
        summary.total_embeddings, summary.wire_bytes, summary.wire_messages, summary.elapsed_ms
    );
    println!(
        "resilience ({})\t{} rpc retries\t{} reconnects\t{} heartbeats missed",
        summary.fault_policy, summary.rpc_retries, summary.reconnects, summary.heartbeats_missed
    );
    if !summary.machines_recovered.is_empty() {
        println!(
            "recovered machines {:?}: {} region groups recomputed in-process after worker loss",
            summary.machines_recovered, summary.groups_recovered
        );
    }
}
