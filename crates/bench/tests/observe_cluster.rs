//! Observability artifacts from a **real 4-process cluster** over
//! Unix-domain sockets: every process must write a schema-valid Chrome
//! trace and metrics snapshot (plus the Prometheus sibling), the
//! coordinator's JSON summary must carry the cluster-wide metrics object,
//! and the traces must *show the pipelining*: under the async round driver
//! the `rpc.fetchV` spans overlap each other (or expansion work they are
//! not nested inside), while the serial driver's single-worker trace is
//! strictly sequential. Both legs must enumerate bit-identical counts —
//! recording the timeline never perturbs the engine.
//!
//! This is the test the `observe` CI job runs under a hard timeout.

use std::path::{Path, PathBuf};
use std::process::Command;

use rads_bench::json::Json;
use rads_bench::procs::{machine_artifact, prometheus_sibling, ClusterSummary};
use rads_bench::{validate_metrics_json, validate_trace_json};

const MACHINES: usize = 4;
const SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-node")
}

/// One client-side RPC or engine span lifted out of a trace file.
struct Span {
    name: String,
    cat: String,
    ts: u64,
    end: u64,
    id: u64,
    parent: u64,
}

fn spans_of(trace: &str) -> Vec<Span> {
    let parsed = Json::parse(trace).expect("trace parses as JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    let mut spans = Vec::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let u64_of = |v: &Json, key: &str| v.get(key).and_then(Json::as_u64).expect(key);
        let ts = u64_of(event, "ts");
        let args = event.get("args").expect("args");
        spans.push(Span {
            name: event.get("name").and_then(Json::as_str).expect("name").to_string(),
            cat: event.get("cat").and_then(Json::as_str).expect("cat").to_string(),
            ts,
            end: ts + u64_of(event, "dur"),
            id: u64_of(args, "id"),
            parent: u64_of(args, "parent"),
        });
    }
    spans
}

/// Half-open interval overlap: shared wall-clock time, not mere adjacency.
fn overlaps(a: &Span, b: &Span) -> bool {
    a.ts < b.end && b.ts < a.end
}

/// Walks `span`'s parent chain looking for `ancestor` — a nested RPC
/// *contains* no pipelining even though the intervals intersect.
fn is_ancestor<'a>(spans: &'a [Span], mut span: &'a Span, ancestor: &Span) -> bool {
    let by_id = |id: u64| spans.iter().find(|s| s.id == id);
    while span.parent != 0 {
        if span.parent == ancestor.id {
            return true;
        }
        match by_id(span.parent) {
            Some(parent) => span = parent,
            None => return false,
        }
    }
    false
}

/// The pipelining signature of one process's trace: two in-flight `fetchV`
/// requests at once, or an RPC in flight while expansion it is not nested
/// inside makes progress.
fn shows_overlap(spans: &[Span]) -> bool {
    let fetches: Vec<&Span> = spans.iter().filter(|s| s.name == "rpc.fetchV").collect();
    for (i, a) in fetches.iter().enumerate() {
        if fetches[i + 1..].iter().any(|b| overlaps(a, b)) {
            return true;
        }
    }
    spans.iter().filter(|s| s.cat == "rpc").any(|rpc| {
        spans
            .iter()
            .filter(|s| s.name == "expand")
            .any(|expand| overlaps(rpc, expand) && !is_ancestor(spans, rpc, expand))
    })
}

/// Runs the coordinator for one driver with both artifact flags set and
/// returns the parsed summary.
fn run_cluster(driver: &str, trace_base: &Path, metrics_base: &Path) -> ClusterSummary {
    let output = Command::new(node_binary())
        .args([
            "run",
            "--machines",
            &MACHINES.to_string(),
            "--transport",
            "uds",
            "--dataset",
            "LiveJournal",
            "--scale",
            &SCALE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--query",
            "q5",
            "--driver",
            driver,
            // one worker per machine and small chunks: the serial leg's
            // trace must be strictly sequential (a second worker's demand
            // fetches would overlap the first's), and the async leg needs
            // several chunks per round to have anything to pipeline
            "--workers",
            "1",
            "--fetch-chunk",
            "16",
            "--trace-out",
            &trace_base.display().to_string(),
            "--metrics-out",
            &metrics_base.display().to_string(),
            "--timeout-secs",
            "300",
            "--json",
        ])
        .output()
        .expect("spawn rads-node coordinator");
    assert!(
        output.status.success(),
        "{driver}: coordinator failed with {}\nstdout: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    ClusterSummary::parse_json(&String::from_utf8_lossy(&output.stdout))
        .expect("coordinator prints a JSON summary line")
}

#[test]
#[ignore = "multi-process cluster; run by the observe CI job via --ignored"]
fn cluster_traces_show_async_overlap_and_validate() {
    let dir = std::env::temp_dir().join(format!("rads-observe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let mut totals = Vec::new();
    for driver in ["serial", "async"] {
        let trace_base = dir.join(format!("trace-{driver}.json"));
        let metrics_base = dir.join(format!("metrics-{driver}.json"));
        let summary = run_cluster(driver, &trace_base, &metrics_base);
        totals.push(summary.total_embeddings);

        // cluster-wide metrics made it into the summary: the absorbed
        // registry counters agree with the run's own embedding count
        let scalar = |name: &str| {
            summary.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
                panic!("{driver}: summary metrics object misses {name}")
            })
        };
        assert_eq!(
            scalar("rads_sme_embeddings_total") + scalar("rads_distributed_embeddings_total"),
            summary.total_embeddings,
            "{driver}: absorbed cluster metrics disagree with the enumeration count"
        );
        assert!(scalar("rads_net_bytes_total") > 0, "{driver}: no traffic in the metrics");

        // every process wrote schema-valid artifacts; the traces carry the
        // per-driver pipelining signature
        let mut machines_with_overlap = 0usize;
        for machine in 0..MACHINES {
            let trace_path = machine_artifact(&trace_base, machine);
            let trace = std::fs::read_to_string(&trace_path)
                .unwrap_or_else(|e| panic!("{driver}: read {}: {e}", trace_path.display()));
            let span_count = validate_trace_json(&trace)
                .unwrap_or_else(|e| panic!("{driver}: {}: {e}", trace_path.display()));
            assert!(span_count > 0, "{driver}: machine {machine} recorded no spans");
            if shows_overlap(&spans_of(&trace)) {
                machines_with_overlap += 1;
            }

            let metrics_path = machine_artifact(&metrics_base, machine);
            let metrics = std::fs::read_to_string(&metrics_path)
                .unwrap_or_else(|e| panic!("{driver}: read {}: {e}", metrics_path.display()));
            validate_metrics_json(&metrics)
                .unwrap_or_else(|e| panic!("{driver}: {}: {e}", metrics_path.display()));
            let prom = std::fs::read_to_string(prometheus_sibling(&metrics_path))
                .unwrap_or_else(|e| panic!("{driver}: missing Prometheus sibling: {e}"));
            assert!(
                prom.contains("# TYPE rads_net_bytes_total counter"),
                "{driver}: machine {machine} Prometheus export misses the traffic counter"
            );
        }
        match driver {
            // single worker, blocking round-trips: nothing may pipeline
            "serial" => assert_eq!(
                machines_with_overlap, 0,
                "serial trace shows overlapping RPCs — the span nesting (or the driver) is wrong"
            ),
            // scatter issues every chunk before the first harvest, and the
            // group-ahead prefetch fetches under expansion: some machine
            // must show it
            _ => assert!(
                machines_with_overlap > 0,
                "async trace never overlaps an RPC with other work — no pipelining visible"
            ),
        }
    }
    assert_eq!(totals[0], totals[1], "drivers disagree on the embedding count");
    std::fs::remove_dir_all(&dir).ok();
}

/// `machine_artifact` / `prometheus_sibling` naming is load-bearing for the
/// CI job's glob patterns — pin it.
#[test]
fn artifact_naming_matches_the_ci_globs() {
    let base = PathBuf::from("/tmp/obs/trace.json");
    assert_eq!(machine_artifact(&base, 0), base);
    assert_eq!(machine_artifact(&base, 3), PathBuf::from("/tmp/obs/trace.json.m3"));
    assert_eq!(
        prometheus_sibling(&PathBuf::from("/tmp/obs/metrics.json.m2")),
        PathBuf::from("/tmp/obs/metrics.json.m2.prom")
    );
}
