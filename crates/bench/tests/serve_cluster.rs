//! The serving-mode smoke test: a **resident 4-process cluster** over
//! Unix-domain sockets must answer a stream of queries with counts
//! bit-identical to one-shot runs, serve its plan cache (observable as a
//! `plan_cache_hit` on a repeated query), keep a live Prometheus page, and
//! reject over-budget queries at admission instead of dispatching them.
//!
//! This is the test the `serve` CI job runs under a hard timeout (via
//! `--ignored`, like the `cluster-smoke` job). Every blocking step has its
//! own deadline and the server child is killed on panic, so a wedged
//! cluster fails the test instead of hanging the runner.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rads_bench::build_cluster;
use rads_bench::serve::{client_round_trip, ClientOp, QueryReply};
use rads_core::{run_rads, RadsConfig};
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

const MACHINES: usize = 4;
const SCALE: f64 = 0.05;
const SEED: u64 = 42;
const READY_DEADLINE: Duration = Duration::from_secs(120);
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(30);

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-node")
}

fn query_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-query")
}

/// Kills the serve coordinator (which reaps its workers' sockets with it)
/// if the test panics before the clean shutdown path runs.
struct ServeGuard {
    child: Child,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pulls a string field out of the ready line's flat JSON object.
fn json_str_field(line: &str, field: &str) -> String {
    let key = format!("\"{field}\":\"");
    let at = line.find(&key).unwrap_or_else(|| panic!("no {field:?} in ready line {line:?}"));
    let rest = &line[at + key.len()..];
    rest[..rest.find('"').expect("unterminated string")].to_string()
}

/// Spawns `rads-node serve` and waits for its ready line, returning the
/// guard plus the client and Prometheus addresses.
fn start_serve(extra: &[&str]) -> (ServeGuard, String, String) {
    let mut child = Command::new(node_binary())
        .args([
            "serve",
            "--machines",
            &MACHINES.to_string(),
            "--transport",
            "uds",
            "--dataset",
            "LiveJournal",
            "--scale",
            &SCALE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--timeout-secs",
            "300",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn rads-node serve");
    let stdout = child.stdout.take().expect("stdout is piped");
    let (line_tx, line_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() {
            let _ = line_tx.send(line);
        }
        // keep draining so the server never blocks on a full stdout pipe
        std::io::copy(&mut reader, &mut std::io::sink()).ok();
    });
    let guard = ServeGuard { child };
    let ready = line_rx
        .recv_timeout(READY_DEADLINE)
        .expect("serve coordinator prints its ready line before the deadline");
    assert!(ready.contains("\"serving\":true"), "unexpected ready line: {ready}");
    let client_addr = json_str_field(&ready, "client_addr");
    let http_addr = json_str_field(&ready, "http_addr");
    (guard, client_addr, http_addr)
}

fn expect_ok(reply: QueryReply, what: &str) -> (u64, bool, Vec<(u32, u64)>) {
    match reply {
        QueryReply::Ok { count, plan_cache_hit, per_machine, .. } => {
            (count, plan_cache_hit, per_machine)
        }
        other => panic!("{what}: expected Ok, got {other:?}"),
    }
}

/// One plain-HTTP scrape of the Prometheus page.
fn scrape(http_addr: &str) -> String {
    let mut stream = TcpStream::connect(http_addr).expect("connect to Prometheus page");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n")
        .expect("send scrape request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape response");
    body
}

fn shutdown(mut guard: ServeGuard, client_addr: &str) {
    let reply = client_round_trip(client_addr, &ClientOp::Shutdown, 99)
        .expect("shutdown round trip succeeds");
    assert_eq!(reply, QueryReply::ShutdownAck);
    let deadline = Instant::now() + SHUTDOWN_DEADLINE;
    loop {
        match guard.child.try_wait().expect("poll serve coordinator") {
            Some(status) => {
                assert!(status.success(), "serve coordinator exited with {status}");
                break;
            }
            None if Instant::now() > deadline => {
                panic!("serve coordinator still running {SHUTDOWN_DEADLINE:?} after ShutdownAck")
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn resident_cluster_answers_a_query_stream_bit_identically() {
    // ground truth from the in-process transport, computed once
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let expected: Vec<(&str, u64)> = ["q1", "q5"]
        .iter()
        .map(|name| {
            let pattern = queries::query_by_name(name).expect("known query");
            (*name, run_rads(&cluster, &pattern, &RadsConfig::default()).total_embeddings)
        })
        .collect();

    let (guard, client_addr, http_addr) = start_serve(&[]);

    // q1 then q5 straight through the library client
    let mut first_q1 = None;
    for (name, want) in &expected {
        let op = ClientOp::Query { pattern: (*name).to_string(), budget: None };
        let reply = client_round_trip(&client_addr, &op, 7).expect("query round trip");
        let (count, hit, per_machine) = expect_ok(reply, name);
        assert_eq!(
            count, *want,
            "{name}: resident cluster deviates from the one-shot in-process count"
        );
        assert!(!hit, "{name}: first submission cannot hit the plan cache");
        assert_eq!(per_machine.len(), MACHINES);
        assert_eq!(per_machine.iter().map(|(_, n)| n).sum::<u64>(), count);
        if *name == "q1" {
            first_q1 = Some(per_machine);
        }
    }

    // the repeated q1 goes through the rads-query binary: same count,
    // same per-machine split, and this time the plan comes from the cache
    let output = Command::new(query_binary())
        .args(["--addr", &client_addr, "--query", "q1", "--json"])
        .output()
        .expect("spawn rads-query");
    assert!(
        output.status.success(),
        "rads-query failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let answer = String::from_utf8_lossy(&output.stdout);
    assert!(answer.contains("\"plan_cache_hit\":true"), "repeated q1 misses the plan cache: {answer}");
    assert!(
        answer.contains(&format!("\"count\":{},", expected[0].1)),
        "repeated q1 changed its count: {answer}"
    );
    let per: Vec<String> =
        first_q1.unwrap().iter().map(|(m, n)| format!("[{m},{n}]")).collect();
    assert!(
        answer.contains(&format!("\"per_machine\":[{}]", per.join(","))),
        "repeated q1 changed its per-machine split: {answer}"
    );

    // the Prometheus page is live and cumulative across the stream
    let page = scrape(&http_addr);
    for needle in
        ["rads_serve_queries_total 3", "rads_plan_cache_hits_total 1", "rads_plan_cache_misses_total"]
    {
        assert!(page.contains(needle), "scrape is missing {needle:?}:\n{page}");
    }

    shutdown(guard, &client_addr);
}

#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn admission_control_rejects_over_budget_queries() {
    // 1 KiB admission limit: every query's conservative footprint estimate
    // is orders of magnitude above it, so nothing may be dispatched
    let (guard, client_addr, _http) = start_serve(&["--admission-bytes", "1k"]);
    let op = ClientOp::Query { pattern: "q1".to_string(), budget: None };
    match client_round_trip(&client_addr, &op, 1).expect("round trip") {
        QueryReply::Rejected { estimate, limit } => {
            assert_eq!(limit, 1024);
            assert!(estimate > limit, "rejection must carry the offending estimate");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // the rads-query binary maps Rejected to exit code 3
    let output = Command::new(query_binary())
        .args(["--addr", &client_addr, "--query", "q1"])
        .output()
        .expect("spawn rads-query");
    assert_eq!(output.status.code(), Some(3), "rejection exit code");
    shutdown(guard, &client_addr);
}

#[test]
fn serve_mode_validates_its_flags() {
    let output = Command::new(node_binary())
        .args(["serve", "--machines", "0"])
        .output()
        .expect("spawn rads-node serve");
    assert!(!output.status.success());
    let output = Command::new(node_binary())
        .args(["serve", "--machines", "2", "--admission-bytes", "lots"])
        .output()
        .expect("spawn rads-node serve");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("admission-bytes"), "stderr names the bad flag: {stderr}");
}
