//! The serving-mode smoke test: a **resident 4-process cluster** over
//! Unix-domain sockets must answer a stream of queries with counts
//! bit-identical to one-shot runs, serve its plan cache (observable as a
//! `plan_cache_hit` on a repeated query), keep a live Prometheus page, and
//! reject over-budget queries at admission instead of dispatching them.
//!
//! This is the test the `serve` CI job runs under a hard timeout (via
//! `--ignored`, like the `cluster-smoke` job). Every blocking step has its
//! own deadline and the server child is killed on panic, so a wedged
//! cluster fails the test instead of hanging the runner.
//!
//! The **concurrency-equivalence suite** lives here too: with the
//! query-scoped envelope protocol, N overlapping queries must return
//! counts bit-identical to the same queries run serially — across the
//! in-process transport and the real UDS cluster, under both round
//! drivers, and with a deliberately slow (budget-starved) query running
//! in the middle of fast ones (the chaos variant: one query's stalling
//! workers must not corrupt another query's results).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rads_bench::build_cluster;
use rads_bench::serve::{client_round_trip, ClientOp, QueryReply};
use rads_core::{run_rads, RadsConfig, RoundDriver};
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

const MACHINES: usize = 4;
const SCALE: f64 = 0.05;
const SEED: u64 = 42;
const READY_DEADLINE: Duration = Duration::from_secs(120);
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(30);

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-node")
}

fn query_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-query")
}

/// Kills the serve coordinator (which reaps its workers' sockets with it)
/// if the test panics before the clean shutdown path runs.
struct ServeGuard {
    child: Child,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pulls a string field out of the ready line's flat JSON object.
fn json_str_field(line: &str, field: &str) -> String {
    let key = format!("\"{field}\":\"");
    let at = line.find(&key).unwrap_or_else(|| panic!("no {field:?} in ready line {line:?}"));
    let rest = &line[at + key.len()..];
    rest[..rest.find('"').expect("unterminated string")].to_string()
}

/// Spawns `rads-node serve` and waits for its ready line, returning the
/// guard plus the client and Prometheus addresses.
fn start_serve(extra: &[&str]) -> (ServeGuard, String, String) {
    let mut child = Command::new(node_binary())
        .args([
            "serve",
            "--machines",
            &MACHINES.to_string(),
            "--transport",
            "uds",
            "--dataset",
            "LiveJournal",
            "--scale",
            &SCALE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--timeout-secs",
            "300",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn rads-node serve");
    let stdout = child.stdout.take().expect("stdout is piped");
    let (line_tx, line_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() {
            let _ = line_tx.send(line);
        }
        // keep draining so the server never blocks on a full stdout pipe
        std::io::copy(&mut reader, &mut std::io::sink()).ok();
    });
    let guard = ServeGuard { child };
    let ready = line_rx
        .recv_timeout(READY_DEADLINE)
        .expect("serve coordinator prints its ready line before the deadline");
    assert!(ready.contains("\"serving\":true"), "unexpected ready line: {ready}");
    let client_addr = json_str_field(&ready, "client_addr");
    let http_addr = json_str_field(&ready, "http_addr");
    (guard, client_addr, http_addr)
}

fn expect_ok(reply: QueryReply, what: &str) -> (u64, bool, Vec<(u32, u64)>) {
    match reply {
        QueryReply::Ok { count, plan_cache_hit, per_machine, .. } => {
            (count, plan_cache_hit, per_machine)
        }
        other => panic!("{what}: expected Ok, got {other:?}"),
    }
}

/// One plain-HTTP scrape of the Prometheus page.
fn scrape(http_addr: &str) -> String {
    let mut stream = TcpStream::connect(http_addr).expect("connect to Prometheus page");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: serve\r\nConnection: close\r\n\r\n")
        .expect("send scrape request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read scrape response");
    body
}

fn shutdown(mut guard: ServeGuard, client_addr: &str) {
    let reply = client_round_trip(client_addr, &ClientOp::Shutdown, 99)
        .expect("shutdown round trip succeeds");
    assert_eq!(reply, QueryReply::ShutdownAck);
    let deadline = Instant::now() + SHUTDOWN_DEADLINE;
    loop {
        match guard.child.try_wait().expect("poll serve coordinator") {
            Some(status) => {
                assert!(status.success(), "serve coordinator exited with {status}");
                break;
            }
            None if Instant::now() > deadline => {
                panic!("serve coordinator still running {SHUTDOWN_DEADLINE:?} after ShutdownAck")
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn resident_cluster_answers_a_query_stream_bit_identically() {
    // ground truth from the in-process transport, computed once
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let expected: Vec<(&str, u64)> = ["q1", "q5"]
        .iter()
        .map(|name| {
            let pattern = queries::query_by_name(name).expect("known query");
            (*name, run_rads(&cluster, &pattern, &RadsConfig::default()).total_embeddings)
        })
        .collect();

    let (guard, client_addr, http_addr) = start_serve(&[]);

    // q1 then q5 straight through the library client
    let mut first_q1 = None;
    for (name, want) in &expected {
        let op = ClientOp::Query { pattern: (*name).to_string(), budget: None };
        let reply = client_round_trip(&client_addr, &op, 7).expect("query round trip");
        let (count, hit, per_machine) = expect_ok(reply, name);
        assert_eq!(
            count, *want,
            "{name}: resident cluster deviates from the one-shot in-process count"
        );
        assert!(!hit, "{name}: first submission cannot hit the plan cache");
        assert_eq!(per_machine.len(), MACHINES);
        assert_eq!(per_machine.iter().map(|(_, n)| n).sum::<u64>(), count);
        if *name == "q1" {
            first_q1 = Some(per_machine);
        }
    }

    // the repeated q1 goes through the rads-query binary: same count,
    // same per-machine split, and this time the plan comes from the cache
    let output = Command::new(query_binary())
        .args(["--addr", &client_addr, "--query", "q1", "--json"])
        .output()
        .expect("spawn rads-query");
    assert!(
        output.status.success(),
        "rads-query failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let answer = String::from_utf8_lossy(&output.stdout);
    assert!(answer.contains("\"plan_cache_hit\":true"), "repeated q1 misses the plan cache: {answer}");
    assert!(
        answer.contains(&format!("\"count\":{},", expected[0].1)),
        "repeated q1 changed its count: {answer}"
    );
    let per: Vec<String> =
        first_q1.unwrap().iter().map(|(m, n)| format!("[{m},{n}]")).collect();
    assert!(
        answer.contains(&format!("\"per_machine\":[{}]", per.join(","))),
        "repeated q1 changed its per-machine split: {answer}"
    );

    // the Prometheus page is live and cumulative across the stream
    let page = scrape(&http_addr);
    for needle in
        ["rads_serve_queries_total 3", "rads_plan_cache_hits_total 1", "rads_plan_cache_misses_total"]
    {
        assert!(page.contains(needle), "scrape is missing {needle:?}:\n{page}");
    }

    shutdown(guard, &client_addr);
}

#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn admission_control_rejects_over_budget_queries() {
    // 1 KiB admission limit: every query's conservative footprint estimate
    // is orders of magnitude above it, so nothing may be dispatched
    let (guard, client_addr, _http) = start_serve(&["--admission-bytes", "1k"]);
    let op = ClientOp::Query { pattern: "q1".to_string(), budget: None };
    match client_round_trip(&client_addr, &op, 1).expect("round trip") {
        QueryReply::Rejected { query_id, estimate, limit } => {
            assert!(query_id > 0, "rejections carry the assigned query id");
            assert_eq!(limit, 1024);
            assert!(estimate > limit, "rejection must carry the offending estimate");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // the rads-query binary maps Rejected to exit code 3
    let output = Command::new(query_binary())
        .args(["--addr", &client_addr, "--query", "q1"])
        .output()
        .expect("spawn rads-query");
    assert_eq!(output.status.code(), Some(3), "rejection exit code");
    shutdown(guard, &client_addr);
}

/// Pulls an unsigned integer field out of a flat JSON object line.
fn json_u64_field(line: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let at = line.find(&key).unwrap_or_else(|| panic!("no {field:?} in {line:?}"));
    let rest = &line[at + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("non-numeric {field:?} in {line:?}"))
}

/// Concurrency equivalence on the in-process transport, both round
/// drivers: three threads running the same query at once (each on its own
/// cluster — process-global state like the metrics registry, the trace
/// buffers and the planner are the shared surface) must reproduce the
/// serial counts exactly.
#[test]
fn concurrent_in_process_runs_match_serial_runs() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(0.02), SEED);
    for driver in [RoundDriver::Serial, RoundDriver::Async] {
        let config = RadsConfig { round_driver: driver, ..RadsConfig::default() };
        for name in ["q1", "q5"] {
            let pattern = queries::query_by_name(name).expect("known query");
            let serial =
                run_rads(&build_cluster(&dataset.graph, MACHINES), &pattern, &config)
                    .total_embeddings;
            let concurrent: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        let (graph, pattern, config) = (&dataset.graph, &pattern, &config);
                        scope.spawn(move || {
                            run_rads(&build_cluster(graph, MACHINES), pattern, config)
                                .total_embeddings
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("runner thread")).collect()
            });
            for count in concurrent {
                assert_eq!(
                    count, serial,
                    "{name} under {driver:?}: overlapped run deviates from the serial count"
                );
            }
        }
    }
}

/// Concurrency equivalence over the real 4-process UDS cluster, both round
/// drivers: four overlapping submissions of the same query (via
/// `rads-query --concurrency 4`, one connection each) must each return the
/// serial in-process count, under four distinct server-assigned query ids.
#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn overlapping_queries_are_bit_identical_to_serial() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let pattern = queries::query_by_name("q5").expect("known query");
    let expected = run_rads(&cluster, &pattern, &RadsConfig::default()).total_embeddings;

    for driver in ["serial", "async"] {
        let (guard, client_addr, http_addr) =
            start_serve(&["--max-concurrent-queries", "4", "--driver", driver]);
        let output = Command::new(query_binary())
            .args(["--addr", &client_addr, "--query", "q5", "--concurrency", "4", "--json"])
            .output()
            .expect("spawn rads-query");
        assert!(
            output.status.success(),
            "driver {driver}: overlapping rads-query failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
        assert_eq!(lines.len(), 4, "driver {driver}: one reply line per submission:\n{stdout}");
        let mut ids = Vec::new();
        for line in &lines {
            assert!(line.contains("\"ok\":true"), "driver {driver}: failed reply: {line}");
            assert_eq!(
                json_u64_field(line, "count"),
                expected,
                "driver {driver}: overlapped count deviates from the serial in-process count"
            );
            ids.push(json_u64_field(line, "query_id"));
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "driver {driver}: query ids must be distinct: {lines:?}");

        // a serialized follow-up on the same warm cluster agrees too
        let op = ClientOp::Query { pattern: "q5".to_string(), budget: None };
        let reply = client_round_trip(&client_addr, &op, 5).expect("serial follow-up");
        let (count, _, _) = expect_ok(reply, "serial follow-up");
        assert_eq!(count, expected, "driver {driver}: serial follow-up changed the count");

        let page = scrape(&http_addr);
        assert!(
            page.contains("rads_serve_queries_total 5"),
            "driver {driver}: scrape is missing the 5 completed queries:\n{page}"
        );
        shutdown(guard, &client_addr);
    }
}

/// The chaos variant: a budget-starved q5 (its workers grind through
/// maximally split region groups — the slow lane) overlaps two normal q1
/// submissions. If query-scoped routing leaked between streams, the fast
/// queries would harvest the slow query's region groups or responses;
/// bit-identical counts on all three prove they stayed apart.
#[test]
#[ignore = "multi-process resident cluster; run by the serve CI job via --ignored"]
fn a_stalled_query_does_not_corrupt_overlapping_results() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let expected: Vec<(&str, u64)> = ["q1", "q5"]
        .iter()
        .map(|name| {
            let pattern = queries::query_by_name(name).expect("known query");
            (*name, run_rads(&cluster, &pattern, &RadsConfig::default()).total_embeddings)
        })
        .collect();

    let (guard, client_addr, _http) = start_serve(&["--max-concurrent-queries", "3"]);
    let replies: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let slow = {
            let client_addr = client_addr.clone();
            scope.spawn(move || {
                let op = ClientOp::Query { pattern: "q5".to_string(), budget: Some(64 << 10) };
                client_round_trip(&client_addr, &op, 11).expect("slow q5 round trip")
            })
        };
        let fast: Vec<_> = (0..2)
            .map(|slot| {
                let client_addr = client_addr.clone();
                scope.spawn(move || {
                    let op = ClientOp::Query { pattern: "q1".to_string(), budget: None };
                    client_round_trip(&client_addr, &op, 21 + slot).expect("fast q1 round trip")
                })
            })
            .collect();
        let mut replies = Vec::new();
        for (want, handle) in [(expected[1].1, slow)]
            .into_iter()
            .chain(fast.into_iter().map(|h| (expected[0].1, h)))
        {
            let reply = handle.join().expect("client thread");
            match reply {
                QueryReply::Ok { query_id, count, .. } => replies.push((query_id, count)),
                other => panic!("expected Ok, got {other:?}"),
            }
            let (_, count) = replies.last().unwrap();
            assert_eq!(*count, want, "overlapped count deviates from the serial count");
        }
        replies
    });
    let mut ids: Vec<u64> = replies.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "query ids must be distinct: {replies:?}");
    shutdown(guard, &client_addr);
}

#[test]
fn serve_mode_validates_its_flags() {
    let output = Command::new(node_binary())
        .args(["serve", "--machines", "0"])
        .output()
        .expect("spawn rads-node serve");
    assert!(!output.status.success());
    let output = Command::new(node_binary())
        .args(["serve", "--machines", "2", "--admission-bytes", "lots"])
        .output()
        .expect("spawn rads-node serve");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("admission-bytes"), "stderr names the bad flag: {stderr}");
}
