//! The chaos test: a **real 4-process cluster** loses a worker to SIGKILL
//! mid-run and must honor the configured fault policy.
//!
//! * `--fault-policy recover` — the coordinator detects the death (process
//!   exit confirmed via `try_wait`, heartbeat staleness is advisory only),
//!   kills the remaining workers and recomputes the run deterministically
//!   in-process. The summary must report the recovered machine and carry
//!   embedding counts **bit-identical** to the ground truth.
//! * `--fault-policy fail-fast` — the coordinator aborts with a nonzero
//!   exit and a structured per-machine report naming the dead worker, well
//!   before the run's own deadline.
//!
//! These are the tests the `chaos` CI job runs under a hard `timeout`: a
//! recovery path that hangs fails the job instead of wedging the runner.

use std::process::Command;

use rads_bench::procs::ClusterSummary;
use rads_bench::build_cluster;
use rads_core::{run_rads, RadsConfig};
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

const MACHINES: usize = 4;
const SCALE: f64 = 1.0;
const SEED: u64 = 42;
const QUERY: &str = "q4";
/// A clean release-mode run at this scale takes ~2.5s (debug much longer),
/// and the coordinator's liveness poll ticks every 100ms — so a kill armed
/// at 600ms always lands on a live, mid-run worker.
const KILL_MS: u64 = 600;

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-node")
}

fn chaos_run(policy: &str) -> std::process::Output {
    Command::new(node_binary())
        .args([
            "run",
            "--machines",
            &MACHINES.to_string(),
            "--transport",
            "uds",
            "--dataset",
            "LiveJournal",
            "--scale",
            &SCALE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--query",
            QUERY,
            "--fault-policy",
            policy,
            "--chaos-kill-ms",
            &KILL_MS.to_string(),
            "--timeout-secs",
            "300",
            "--json",
        ])
        .output()
        .expect("spawn rads-node coordinator")
}

// Both tests are #[ignore]d by default: they spawn 4-process clusters and
// SIGKILL workers, which belongs in the dedicated release-mode `chaos` CI
// job (run there via `--ignored`). Locally:
// `cargo test -p rads-bench --test chaos_cluster -- --ignored`.

#[test]
#[ignore = "multi-process chaos run; run by the chaos CI job via --ignored"]
fn sigkilled_worker_is_recovered_to_ground_truth_counts() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let pattern = queries::query_by_name(QUERY).expect("known query");
    let expected = run_rads(&cluster, &pattern, &RadsConfig::default());

    let output = chaos_run("recover");
    assert!(
        output.status.success(),
        "recovery must complete the run; status {}\nstdout: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let summary = ClusterSummary::parse_json(&String::from_utf8_lossy(&output.stdout))
        .expect("coordinator prints a JSON summary line");
    assert_eq!(
        summary.total_embeddings, expected.total_embeddings,
        "recovered run deviates from ground truth"
    );
    assert_eq!(summary.fault_policy, "recover");
    assert!(
        !summary.machines_recovered.is_empty(),
        "the SIGKILLed worker never registered as recovered — did the kill fire?"
    );
    assert!(
        summary.machines_recovered.iter().all(|&m| m > 0 && m < MACHINES),
        "recovered machine ids out of range: {:?}",
        summary.machines_recovered
    );
    assert_eq!(summary.per_machine.len(), MACHINES, "rebuild reports every machine");
    assert_eq!(
        summary.per_machine.iter().map(|m| m.embeddings).sum::<u64>(),
        summary.total_embeddings,
        "per-machine counts do not add up after recovery"
    );
}

#[test]
#[ignore = "multi-process chaos run; run by the chaos CI job via --ignored"]
fn sigkilled_worker_under_fail_fast_aborts_with_a_structured_report() {
    let output = chaos_run("fail-fast");
    assert!(
        !output.status.success(),
        "fail-fast must abort on worker loss\nstdout: {}",
        String::from_utf8_lossy(&output.stdout),
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("fail-fast"), "stderr names the policy: {stderr}");
    assert!(
        stderr.contains("\"fault\":\"worker-loss\""),
        "stderr carries the structured report: {stderr}"
    );
    assert!(
        stderr.contains("\"machine\":"),
        "the report names the dead machine: {stderr}"
    );
}
