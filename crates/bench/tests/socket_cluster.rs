//! The cluster smoke test: a **real 4-process cluster** over Unix-domain
//! sockets must produce embedding counts bit-identical to the in-process
//! transport for every standard query, with real framed bytes on the wire.
//!
//! This is the test the `cluster-smoke` CI job runs under a hard timeout:
//! it spawns the `rads-node` coordinator (which spawns three worker
//! processes), parses its JSON summary and compares against `run_rads` on
//! the same dataset stand-in. A deadlocked transport trips the
//! coordinator's own `--timeout-secs` deadline and fails the test instead
//! of hanging the runner.

use std::process::Command;

use rads_bench::procs::ClusterSummary;
use rads_bench::build_cluster;
use rads_core::{run_rads, RadsConfig};
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

const MACHINES: usize = 4;
const SCALE: f64 = 0.05;
const SEED: u64 = 42;

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_rads-node")
}

/// Runs the coordinator for one query and parses its summary.
fn run_cluster(query: &str, transport: &str) -> ClusterSummary {
    let output = Command::new(node_binary())
        .args([
            "run",
            "--machines",
            &MACHINES.to_string(),
            "--transport",
            transport,
            "--dataset",
            "LiveJournal",
            "--scale",
            &SCALE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--query",
            query,
            // generous: debug builds on loaded CI runners are an order of
            // magnitude slower than the release-mode cluster-smoke steps
            "--timeout-secs",
            "300",
            "--json",
        ])
        .output()
        .expect("spawn rads-node coordinator");
    assert!(
        output.status.success(),
        "{query}: coordinator failed with {}\nstdout: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    ClusterSummary::parse_json(&String::from_utf8_lossy(&output.stdout))
        .expect("coordinator prints a JSON summary line")
}

// The two cluster-running tests are #[ignore]d by default: they spawn 4-process
// clusters per query, which belongs in the dedicated release-mode
// `cluster-smoke` CI job (run there via `--ignored`), not in every debug-mode
// leg of the test matrix. Locally: `cargo test -p rads-bench --test
// socket_cluster -- --ignored`.

#[test]
#[ignore = "multi-process cluster; run by the cluster-smoke CI job via --ignored"]
fn four_process_uds_cluster_matches_in_process_counts_on_all_queries() {
    let dataset = generate(DatasetKind::LiveJournal, Scale(SCALE), SEED);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    for query in ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"] {
        let pattern = queries::query_by_name(query).expect("known query");
        let expected = run_rads(&cluster, &pattern, &RadsConfig::default());
        let summary = run_cluster(query, "uds");
        assert_eq!(
            summary.total_embeddings, expected.total_embeddings,
            "{query}: 4-process UDS cluster deviates from the in-process transport"
        );
        assert_eq!(summary.machines, MACHINES);
        assert_eq!(summary.per_machine.len(), MACHINES);
        assert_eq!(
            summary.per_machine.iter().map(|m| m.embeddings).sum::<u64>(),
            summary.total_embeddings,
            "{query}: per-machine counts do not add up"
        );
        // the socket transport reports real framed bytes: a 4-machine RADS
        // run always talks (fetchV/verifyE/checkR at minimum)
        assert!(summary.wire_bytes > 0, "{query}: no bytes on the wire");
        assert!(summary.wire_messages > 0, "{query}: no requests on the wire");
    }
}

#[test]
#[ignore = "multi-process cluster; run by the cluster-smoke CI job via --ignored"]
fn tcp_cluster_agrees_with_uds_cluster() {
    let uds = run_cluster("q5", "uds");
    let tcp = run_cluster("q5", "tcp");
    assert_eq!(uds.total_embeddings, tcp.total_embeddings);
    assert_eq!(uds.transport, "uds");
    assert_eq!(tcp.transport, "tcp");
}

#[test]
fn coordinator_rejects_unknown_queries_fast() {
    let output = Command::new(node_binary())
        .args(["run", "--machines", "2", "--query", "q99", "--scale", "0.02", "--json"])
        .output()
        .expect("spawn rads-node coordinator");
    assert!(!output.status.success(), "unknown query must fail the run");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("q99"), "stderr names the bad query: {stderr}");
}

#[test]
fn worker_mode_validates_its_flags() {
    // machine id out of range
    let output = Command::new(node_binary())
        .args([
            "worker", "--machine", "5", "--machines", "2", "--addrs", "uds:/tmp/a,uds:/tmp/b",
            "--dataset", "DBLP", "--scale", "0.02", "--seed", "1", "--query", "q1",
        ])
        .output()
        .expect("spawn rads-node worker");
    assert!(!output.status.success());
    // address count mismatch
    let output = Command::new(node_binary())
        .args([
            "worker", "--machine", "1", "--machines", "3", "--addrs", "uds:/tmp/a,uds:/tmp/b",
            "--dataset", "DBLP", "--scale", "0.02", "--seed", "1", "--query", "q1",
        ])
        .output()
        .expect("spawn rads-node worker");
    assert!(!output.status.success());
}
