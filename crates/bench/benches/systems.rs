//! Criterion end-to-end benchmarks: every system on a small instance of every
//! dataset profile, one benchmark per (dataset, query) pair of the evaluation
//! figures, plus the RADS ablations (SM-E, cache, region grouping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rads_baselines::{run_crystal, run_psgl, run_seed, run_twintwig, CliqueIndex};
use rads_bench::build_cluster;
use rads_core::{run_rads, RadsConfig, RegionGroupStrategy};
use rads_datasets::{generate, DatasetKind, Scale};
use rads_graph::queries;

const BENCH_SCALE: Scale = Scale(0.05);
const MACHINES: usize = 4;

fn bench_systems(c: &mut Criterion) {
    for kind in [DatasetKind::RoadNet, DatasetKind::Dblp] {
        let dataset = generate(kind, BENCH_SCALE, 7);
        let cluster = build_cluster(&dataset.graph, MACHINES);
        let index = CliqueIndex::build(&dataset.graph, 4);
        let mut group = c.benchmark_group(format!("systems_{}", dataset.profile.name));
        group.sample_size(10);
        for qname in ["q1", "q2", "q4"] {
            let pattern = queries::query_by_name(qname).unwrap();
            group.bench_with_input(BenchmarkId::new("RADS", qname), &pattern, |b, p| {
                b.iter(|| run_rads(&cluster, p, &RadsConfig::default()).total_embeddings)
            });
            group.bench_with_input(BenchmarkId::new("PSgL", qname), &pattern, |b, p| {
                b.iter(|| run_psgl(&cluster, p).total_embeddings)
            });
            group.bench_with_input(BenchmarkId::new("TwinTwig", qname), &pattern, |b, p| {
                b.iter(|| run_twintwig(&cluster, p).total_embeddings)
            });
            group.bench_with_input(BenchmarkId::new("SEED", qname), &pattern, |b, p| {
                b.iter(|| run_seed(&cluster, &dataset.graph, p).total_embeddings)
            });
            group.bench_with_input(BenchmarkId::new("Crystal", qname), &pattern, |b, p| {
                b.iter(|| run_crystal(&cluster, &dataset.graph, p, &index).total_embeddings)
            });
        }
        group.finish();
    }
}

fn bench_rads_ablations(c: &mut Criterion) {
    let dataset = generate(DatasetKind::Dblp, BENCH_SCALE, 7);
    let cluster = build_cluster(&dataset.graph, MACHINES);
    let pattern = queries::q4();
    let mut group = c.benchmark_group("rads_ablations_q4");
    group.sample_size(10);
    let variants: Vec<(&str, RadsConfig)> = vec![
        ("full", RadsConfig::default()),
        ("no_sme", RadsConfig { enable_sme: false, ..Default::default() }),
        ("no_cache", RadsConfig { enable_cache: false, ..Default::default() }),
        ("random_groups", RadsConfig { grouping: RegionGroupStrategy::Random, ..Default::default() }),
    ];
    for (label, config) in variants {
        group.bench_function(label, |b| {
            b.iter(|| run_rads(&cluster, &pattern, &config).total_embeddings)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_systems, bench_rads_ablations);
criterion_main!(benches);
