//! Criterion micro-benchmarks of RADS's building blocks: the sorted-set
//! intersection kernels, the embedding trie, the edge-verification index,
//! plan computation, border-distance computation, partitioning and the
//! single-machine enumerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rads_core::trie::EmbeddingTrie;
use rads_core::evi::EdgeVerificationIndex;
use rads_graph::generators::{barabasi_albert, grid_2d};
use rads_graph::intersect::{intersect_k_into, intersect_pair_into, IntersectStats};
use rads_graph::{queries, VertexId};
use rads_partition::{BfsPartitioner, HashPartitioner, LabelPropagationPartitioner, LocalPartition, Partitioner};
use rads_plan::{best_plan, PlannerConfig};
use rads_single::count_embeddings;

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    // comparable lengths -> linear-merge dispatch
    let a: Vec<VertexId> = (0..20_000).map(|i| i * 3).collect();
    let b: Vec<VertexId> = (0..20_000).map(|i| i * 5).collect();
    group.bench_function("merge_20k_x_20k", |bench| {
        let (mut out, mut stats) = (Vec::new(), IntersectStats::default());
        bench.iter(|| {
            intersect_pair_into(&a, &b, &mut out, &mut stats);
            out.len()
        })
    });
    // 1000x length skew -> galloping dispatch
    let small: Vec<VertexId> = (0..200).map(|i| i * 997).collect();
    let big: Vec<VertexId> = (0..200_000).collect();
    group.bench_function("gallop_200_x_200k", |bench| {
        let (mut out, mut stats) = (Vec::new(), IntersectStats::default());
        bench.iter(|| {
            intersect_pair_into(&small, &big, &mut out, &mut stats);
            out.len()
        })
    });
    // k-way over the adjacency lists of power-law hubs — the shape the
    // enumerator produces on clique queries
    let g = barabasi_albert(3000, 8, 5);
    let mut by_degree: Vec<VertexId> = g.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let hubs: Vec<&[VertexId]> = by_degree[..4].iter().map(|&v| g.neighbors(v)).collect();
    group.bench_function("kway_4_hub_adjacency", |bench| {
        let (mut out, mut tmp, mut stats) = (Vec::new(), Vec::new(), IntersectStats::default());
        bench.iter(|| {
            let mut lists = hubs.clone();
            intersect_k_into(&mut lists, &mut out, &mut tmp, &mut stats);
            out.len()
        })
    });
    group.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_trie");
    group.bench_function("insert_10k_paths", |b| {
        b.iter(|| {
            let mut trie = EmbeddingTrie::new();
            for root in 0..100u32 {
                let r = trie.add_root(root);
                for mid in 0..10u32 {
                    let m = trie.add_child(r, 1000 + mid);
                    for leaf in 0..10u32 {
                        trie.add_child(m, 2000 + leaf);
                    }
                }
            }
            trie.node_count()
        })
    });
    group.bench_function("insert_then_remove_half", |b| {
        b.iter(|| {
            let mut trie = EmbeddingTrie::new();
            let mut leaves = Vec::new();
            for root in 0..100u32 {
                let r = trie.add_root(root);
                for leaf in 0..50u32 {
                    leaves.push(trie.add_child(r, 1000 + leaf));
                }
            }
            for (i, leaf) in leaves.iter().enumerate() {
                if i % 2 == 0 {
                    trie.remove(*leaf);
                }
            }
            trie.node_count()
        })
    });
    group.finish();
}

fn bench_evi(c: &mut Criterion) {
    c.bench_function("evi_group_and_filter", |b| {
        b.iter(|| {
            let mut trie = EmbeddingTrie::new();
            let mut evi = EdgeVerificationIndex::new();
            let root = trie.add_root(0);
            for i in 0..2000u32 {
                let leaf = trie.add_child(root, i + 1);
                evi.add(i % 50, i % 50 + 1, leaf);
            }
            let mut verdicts = std::collections::HashMap::new();
            for i in 0..25u32 {
                verdicts.insert(rads_graph::types::EdgeKey::new(i, i + 1), false);
            }
            evi.filter_failed(&mut trie, &verdicts)
        })
    });
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_plan");
    for nq in queries::standard_query_set() {
        group.bench_with_input(BenchmarkId::new("best_plan", nq.name), &nq.pattern, |b, p| {
            b.iter(|| best_plan(p, &PlannerConfig::default()).rounds())
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let g = barabasi_albert(2000, 4, 11);
    let mut group = c.benchmark_group("partitioning");
    group.bench_function("hash_8way", |b| b.iter(|| HashPartitioner.partition(&g, 8).sizes()));
    group.bench_function("bfs_8way", |b| b.iter(|| BfsPartitioner.partition(&g, 8).sizes()));
    group.bench_function("label_propagation_8way", |b| {
        b.iter(|| LabelPropagationPartitioner::default().partition(&g, 8).sizes())
    });
    group.finish();
}

fn bench_border_distance(c: &mut Criterion) {
    let g = grid_2d(60, 60);
    let partitioning = BfsPartitioner.partition(&g, 4);
    c.bench_function("border_distance_grid60", |b| {
        b.iter(|| {
            (0..4)
                .map(|m| LocalPartition::build(&g, &partitioning, m).border_vertices().len())
                .sum::<usize>()
        })
    });
}

fn bench_single_machine(c: &mut Criterion) {
    let g = barabasi_albert(400, 4, 3);
    let mut group = c.benchmark_group("single_machine_enumeration");
    group.sample_size(10);
    for name in ["triangle", "q1", "q2"] {
        let q = queries::query_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("count", name), &q, |b, q| {
            b.iter(|| count_embeddings(&g, q))
        });
    }
    group.finish();
    let _ = VertexId::default();
}

criterion_group!(
    benches,
    bench_intersection,
    bench_trie,
    bench_evi,
    bench_planner,
    bench_partitioning,
    bench_border_distance,
    bench_single_machine
);
criterion_main!(benches);
