//! # RADS — Fast and Robust Distributed Subgraph Enumeration
//!
//! A from-scratch Rust reproduction of *"Fast and Robust Distributed Subgraph
//! Enumeration"* (Ren, Wang, Han, Yu — VLDB 2019). This umbrella crate
//! re-exports the public API of every subsystem so downstream users can depend
//! on a single crate:
//!
//! ```no_run
//! use rads::prelude::*;
//!
//! // 1. a data graph and a query pattern
//! let graph = rads::graph::generators::barabasi_albert(1_000, 4, 7);
//! let pattern = rads::graph::queries::q4(); // the "house" query
//!
//! // 2. partition it across 4 simulated machines (METIS stand-in)
//! let partitioning = LabelPropagationPartitioner::default().partition(&graph, 4);
//! let cluster = Cluster::new(std::sync::Arc::new(PartitionedGraph::build(&graph, partitioning)));
//!
//! // 3. run RADS
//! let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
//! println!("{} embeddings, {:.2} MB shipped", outcome.total_embeddings, outcome.traffic.megabytes());
//! ```
//!
//! The individual subsystems are documented in their own crates:
//! [`graph`], [`partition`], [`runtime`], [`single`], [`exec`], [`plan`],
//! [`core`] (the RADS engine itself), [`baselines`], [`datasets`] and
//! [`obs`] (tracing + metrics).

#![deny(rustdoc::broken_intra_doc_links)]

/// Observability: structured tracing (Chrome trace-event export) and the
/// named metrics registry (JSON / Prometheus snapshots).
pub use rads_obs as obs;
/// Graph substrate: CSR graphs, generators, query patterns, algorithms.
pub use rads_graph as graph;
/// Partitioning substrate: k-way partitioners, border vertices, ownership.
pub use rads_partition as partition;
/// The cluster runtime: in-process simulator and real TCP/UDS sockets
/// behind one `Transport` surface.
pub use rads_runtime as runtime;
/// Single-machine subgraph enumeration (SM-E and ground truth).
pub use rads_single as single;
/// Intra-machine work-stealing worker pool.
pub use rads_exec as exec;
/// Execution-plan computation (Section 4).
pub use rads_plan as plan;
/// The RADS engine: embedding trie, EVI, region groups, R-Meef.
pub use rads_core as core;
/// PSgL, TwinTwig, SEED and Crystal baselines.
pub use rads_baselines as baselines;
/// Synthetic dataset suite mirroring the paper's Table 1.
pub use rads_datasets as datasets;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use rads_baselines::{run_crystal, run_psgl, run_seed, run_twintwig, CliqueIndex};
    pub use rads_core::{run_rads, RadsConfig, RadsOutcome};
    pub use rads_datasets::{generate, DatasetKind, Scale};
    pub use rads_graph::{Graph, GraphBuilder, Pattern, PatternBuilder, VertexId};
    pub use rads_partition::{
        BfsPartitioner, HashPartitioner, LabelPropagationPartitioner, PartitionedGraph,
        Partitioner, Partitioning,
    };
    pub use rads_plan::{best_plan, ExecutionPlan, PlannerConfig};
    pub use rads_runtime::{Cluster, NetworkConfig, TransportKind};
    pub use rads_single::{collect_embeddings, count_embeddings};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let g = rads_graph::generators::ring_lattice(12, 1);
        let pattern = rads_graph::queries::query_by_name("triangle").unwrap();
        let partitioning = BfsPartitioner.partition(&g, 2);
        let cluster = Cluster::new(std::sync::Arc::new(PartitionedGraph::build(&g, partitioning)));
        let outcome = run_rads(&cluster, &pattern, &RadsConfig::default());
        assert_eq!(outcome.total_embeddings, count_embeddings(&g, &pattern));
    }
}
